package sqlgen

import (
	"strings"
	"testing"

	"cind/internal/bank"
	cind "cind/internal/core"
	"cind/internal/pattern"
)

func TestForCINDPsi6(t *testing.T) {
	sch := bank.Schema()
	queries := ForCIND(bank.Psi6(sch))
	if len(queries) != 2 { // one per pattern row
		t.Fatalf("queries = %d, want 2", len(queries))
	}
	want := `SELECT t.* FROM "checking" t WHERE t."ab" = 'EDI' AND ` +
		`NOT EXISTS (SELECT 1 FROM "interest" s WHERE s."ab" = 'EDI' AND ` +
		`s."at" = 'checking' AND s."ct" = 'UK' AND s."rt" = '1.5%')`
	if queries[0] != want {
		t.Fatalf("ψ6 row 0 query:\n got: %s\nwant: %s", queries[0], want)
	}
	if !strings.Contains(queries[1], "'NYC'") || !strings.Contains(queries[1], "'1%'") {
		t.Fatalf("ψ6 row 1 query wrong: %s", queries[1])
	}
}

func TestForCINDEmbeddedJoin(t *testing.T) {
	sch := bank.Schema()
	queries := ForCIND(bank.Psi1(sch, "NYC"))
	if len(queries) != 1 {
		t.Fatalf("queries = %d", len(queries))
	}
	q := queries[0]
	for _, frag := range []string{
		`FROM "account_NYC" t`,
		`t."at" = 'saving'`,
		`s."an" = t."an"`,
		`s."cp" = t."cp"`,
		`s."ab" = 'NYC'`,
	} {
		if !strings.Contains(q, frag) {
			t.Errorf("ψ1 query missing %q:\n%s", frag, q)
		}
	}
}

func TestForCINDTraditional(t *testing.T) {
	sch := bank.Schema()
	q := ForCIND(bank.Psi3(sch))[0]
	want := `SELECT t.* FROM "saving" t WHERE NOT EXISTS ` +
		`(SELECT 1 FROM "interest" s WHERE s."ab" = t."ab")`
	if q != want {
		t.Fatalf("ψ3 query:\n got: %s\nwant: %s", q, want)
	}
}

func TestForCFDPhi3(t *testing.T) {
	sch := bank.Schema()
	queries := ForCFD(bank.Phi3(sch))
	if len(queries) != 5 {
		t.Fatalf("queries = %d, want 5 normal-form rows", len(queries))
	}
	// Row 0 is the all-wild fd3: no single-tuple query, pair query without
	// a WHERE clause.
	if queries[0].Single != "" {
		t.Fatalf("all-wild row must have no single-tuple query, got %s", queries[0].Single)
	}
	wantPair := `SELECT t."ct", t."at" FROM "interest" t GROUP BY t."ct", t."at" ` +
		`HAVING COUNT(DISTINCT t."rt") > 1`
	if queries[0].Pair != wantPair {
		t.Fatalf("fd3 pair query:\n got: %s\nwant: %s", queries[0].Pair, wantPair)
	}
	// Row 2 catches t12: UK/checking must have rt = 1.5%.
	wantSingle := `SELECT t.* FROM "interest" t WHERE t."ct" = 'UK' AND ` +
		`t."at" = 'checking' AND t."rt" <> '1.5%'`
	if queries[2].Single != wantSingle {
		t.Fatalf("ϕ3 row 2 single query:\n got: %s\nwant: %s", queries[2].Single, wantSingle)
	}
	if !strings.Contains(queries[2].Pair, `WHERE t."ct" = 'UK' AND t."at" = 'checking'`) {
		t.Fatalf("ϕ3 row 2 pair query: %s", queries[2].Pair)
	}
}

// TestForCINDEmptyXAndXp: the degenerate "some RHS tuple must exist with
// these constants" shape (Example 4.2's ψ) produces a well-formed
// existence query.
func TestForCINDEmptyXAndXp(t *testing.T) {
	sch := bank.Schema()
	psi := cind.MustNew(sch, "exists", "saving", nil, nil,
		"interest", nil, []string{"ct"},
		[]cind.Row{{LHS: pattern.Tup(), RHS: pattern.Tup(pattern.Sym("UK"))}})
	q := ForCIND(psi)[0]
	want := `SELECT t.* FROM "saving" t WHERE NOT EXISTS ` +
		`(SELECT 1 FROM "interest" s WHERE s."ct" = 'UK')`
	if q != want {
		t.Fatalf("query:\n got: %s\nwant: %s", q, want)
	}
}

func TestQuoting(t *testing.T) {
	if quoteLit("O'Hare") != "'O''Hare'" {
		t.Fatal("literal quoting wrong")
	}
	if quoteIdent(`we"ird`) != `"we""ird"` {
		t.Fatal("identifier quoting wrong")
	}
}

func TestTableauDDL(t *testing.T) {
	ddl := TableauDDL("T6", []string{"ab", "rt"}, []pattern.Tuple{
		pattern.Tup(pattern.Sym("EDI"), pattern.Sym("1.5%")),
		pattern.Tup(pattern.Wild, pattern.Wild),
	})
	for _, frag := range []string{
		`CREATE TABLE "T6" ("ab" TEXT, "rt" TEXT);`,
		`INSERT INTO "T6" VALUES ('EDI', '1.5%');`,
		`INSERT INTO "T6" VALUES ('_', '_');`,
	} {
		if !strings.Contains(ddl, frag) {
			t.Errorf("DDL missing %q:\n%s", frag, ddl)
		}
	}
}
