package sqlgen

import (
	"database/sql"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cind/internal/bank"
	"cind/internal/cfd"
	cind "cind/internal/core"
	"cind/internal/memdb"
	"cind/internal/pattern"
	"cind/internal/schema"
)

func TestForCINDPsi6(t *testing.T) {
	sch := bank.Schema()
	queries := ForCIND(bank.Psi6(sch))
	if len(queries) != 2 { // one per pattern row
		t.Fatalf("queries = %d, want 2", len(queries))
	}
	want := `SELECT t.* FROM "checking" t WHERE t."ab" = 'EDI' AND ` +
		`NOT EXISTS (SELECT 1 FROM "interest" s WHERE s."ab" = 'EDI' AND ` +
		`s."at" = 'checking' AND s."ct" = 'UK' AND s."rt" = '1.5%')`
	if queries[0] != want {
		t.Fatalf("ψ6 row 0 query:\n got: %s\nwant: %s", queries[0], want)
	}
	if !strings.Contains(queries[1], "'NYC'") || !strings.Contains(queries[1], "'1%'") {
		t.Fatalf("ψ6 row 1 query wrong: %s", queries[1])
	}
}

func TestForCINDEmbeddedJoin(t *testing.T) {
	sch := bank.Schema()
	queries := ForCIND(bank.Psi1(sch, "NYC"))
	if len(queries) != 1 {
		t.Fatalf("queries = %d", len(queries))
	}
	q := queries[0]
	for _, frag := range []string{
		`FROM "account_NYC" t`,
		`t."at" = 'saving'`,
		`(s."an" = t."an" OR (s."an" IS NULL AND t."an" IS NULL))`,
		`(s."cp" = t."cp" OR (s."cp" IS NULL AND t."cp" IS NULL))`,
		`s."ab" = 'NYC'`,
	} {
		if !strings.Contains(q, frag) {
			t.Errorf("ψ1 query missing %q:\n%s", frag, q)
		}
	}
}

func TestForCINDTraditional(t *testing.T) {
	sch := bank.Schema()
	q := ForCIND(bank.Psi3(sch))[0]
	want := `SELECT t.* FROM "saving" t WHERE NOT EXISTS ` +
		`(SELECT 1 FROM "interest" s WHERE (s."ab" = t."ab" OR (s."ab" IS NULL AND t."ab" IS NULL)))`
	if q != want {
		t.Fatalf("ψ3 query:\n got: %s\nwant: %s", q, want)
	}
}

func TestForCFDPhi3(t *testing.T) {
	sch := bank.Schema()
	queries := ForCFD(bank.Phi3(sch))
	if len(queries) != 5 {
		t.Fatalf("queries = %d, want 5 normal-form rows", len(queries))
	}
	// Row 0 is the all-wild fd3: no single-tuple query, pair query without
	// a WHERE clause and with the NULL-adjusted distinct count.
	if queries[0].Single != "" {
		t.Fatalf("all-wild row must have no single-tuple query, got %s", queries[0].Single)
	}
	wantPair := `SELECT t."ct", t."at" FROM "interest" t GROUP BY t."ct", t."at" ` +
		`HAVING COUNT(DISTINCT t."rt") + MAX(CASE WHEN t."rt" IS NULL THEN 1 ELSE 0 END) > 1`
	if queries[0].Pair != wantPair {
		t.Fatalf("fd3 pair query:\n got: %s\nwant: %s", queries[0].Pair, wantPair)
	}
	// Row 2 catches t12: UK/checking must have rt = 1.5%. The inequality
	// carries the IS NULL arm: a NULL rt also fails the constant.
	wantSingle := `SELECT t.* FROM "interest" t WHERE t."ct" = 'UK' AND ` +
		`t."at" = 'checking' AND (t."rt" <> '1.5%' OR t."rt" IS NULL)`
	if queries[2].Single != wantSingle {
		t.Fatalf("ϕ3 row 2 single query:\n got: %s\nwant: %s", queries[2].Single, wantSingle)
	}
}

// TestConstantRHSEmitsNoPairQuery pins the fix for QV being emitted
// unconditionally: for a constant-RHS normal row QC already reports every
// violating tuple, and a group query would flag X-groups the in-memory
// engine does not consider pair violations (two tuples both failing the
// constant with distinct A values violate individually, not as a pair).
func TestConstantRHSEmitsNoPairQuery(t *testing.T) {
	sch := bank.Schema()
	for i, q := range ForCFD(bank.Phi3(sch)) {
		single := q.Single != ""
		pair := q.Pair != ""
		if single == pair {
			t.Errorf("row %d: Single=%q Pair=%q, want exactly one", i, q.Single, q.Pair)
		}
	}
}

// TestForCINDWildcardPattern pins the fix for forNormalCIND calling
// Const() through the normal-form accessors: on a single-row CIND whose
// Xp/Yp patterns contain wildcards the old code panicked ("not in normal
// form"); wildcard positions constrain nothing and are skipped.
func TestForCINDWildcardPattern(t *testing.T) {
	sch := bank.Schema()
	psi := cind.MustNew(sch, "wild", "saving", nil, []string{"ab", "cn"},
		"interest", nil, []string{"ct", "at"},
		[]cind.Row{{
			LHS: pattern.Tup(pattern.Wild, pattern.Sym("c")),
			RHS: pattern.Tup(pattern.Sym("UK"), pattern.Wild),
		}})
	q := forNormalCIND(psi) // direct call: ForCIND normalizes wildcards away first
	want := `SELECT t.* FROM "saving" t WHERE t."cn" = 'c' AND ` +
		`NOT EXISTS (SELECT 1 FROM "interest" s WHERE s."ct" = 'UK')`
	if q != want {
		t.Fatalf("wildcard-pattern query:\n got: %s\nwant: %s", q, want)
	}
}

// nullSchema is a two-relation schema over infinite domains, used by the
// NULL-semantics fixtures ("" in memory maps to SQL NULL).
func nullSchema() *schema.Schema {
	str := func(names ...string) []schema.Attribute {
		var out []schema.Attribute
		for _, n := range names {
			out = append(out, schema.Attribute{Name: n, Dom: schema.Infinite("string")})
		}
		return out
	}
	return schema.MustNew(
		schema.MustRelation("r", str("x", "y")...),
		schema.MustRelation("s", str("a")...),
	)
}

func openMem(t *testing.T) *sql.DB {
	t.Helper()
	dsn := "sqlgen-" + t.Name()
	db, err := sql.Open(memdb.DriverName, dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close(); memdb.Purge(dsn) })
	return db
}

// TestNullSemanticsEndToEnd executes the emitted queries against a
// NULL-bearing fixture: without the IS NULL arms both violations below are
// silently missed (bare <> and COUNT(DISTINCT) ignore NULLs).
func TestNullSemanticsEndToEnd(t *testing.T) {
	sch := nullSchema()
	db := openMem(t)
	mustExec(t, db, `CREATE TABLE "r" ("x" TEXT, "y" TEXT, "__seq" INTEGER)`)
	mustExec(t, db, `INSERT INTO "r" VALUES
		('g1', 'a', 0), ('g1', NULL, 1),
		('g2', NULL, 2)`)

	// Wildcard RHS: group g1 holds two Y values {a, NULL}.
	wild := cfd.MustNew(sch, "wild", "r", []string{"x"}, []string{"y"},
		[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	pair := ForCFD(wild)[0].Pair
	rows := queryStrings(t, db, pair)
	if !reflect.DeepEqual(rows, [][]string{{"g1"}}) {
		t.Fatalf("pair query on NULL group returned %v, want [[g1]]", rows)
	}

	// Constant RHS: g2's NULL y fails y = 'v'.
	konst := cfd.MustNew(sch, "const", "r", []string{"x"}, []string{"y"},
		[]cfd.Row{{LHS: pattern.Tup(pattern.Sym("g2")), RHS: pattern.Tup(pattern.Sym("v"))}})
	single := ForCFD(konst)[0].Single
	rows = queryStrings(t, db, single)
	if len(rows) != 1 || rows[0][0] != "g2" {
		t.Fatalf("single query on NULL attribute returned %v, want the g2 tuple", rows)
	}

	// The empty pattern constant means NULL: y = '' matches only NULLs, so
	// g1's 'a' tuple violates and the NULL tuples do not.
	null := cfd.MustNew(sch, "null", "r", nil, []string{"y"},
		[]cfd.Row{{LHS: pattern.Tup(), RHS: pattern.Tup(pattern.Sym(""))}})
	single = ForCFD(null)[0].Single
	if !strings.Contains(single, `t."y" IS NOT NULL`) {
		t.Fatalf("empty-constant inequality not rendered as IS NOT NULL: %s", single)
	}
	if rows = queryStrings(t, db, single); len(rows) != 1 || rows[0][1] != "a" {
		t.Fatalf("empty-constant query returned %v, want the (g1, a) tuple", rows)
	}
}

// TestCINDNullSafeJoinEndToEnd: a NULL LHS join value must match a NULL
// RHS value, as the in-memory engine's projection equality does for its
// empty string.
func TestCINDNullSafeJoinEndToEnd(t *testing.T) {
	sch := nullSchema()
	db := openMem(t)
	mustExec(t, db, `CREATE TABLE "r" ("x" TEXT, "y" TEXT, "__seq" INTEGER)`)
	mustExec(t, db, `CREATE TABLE "s" ("a" TEXT, "__seq" INTEGER)`)
	mustExec(t, db, `INSERT INTO "r" VALUES ('k1', '-', 0), (NULL, '-', 1)`)
	mustExec(t, db, `INSERT INTO "s" VALUES (NULL, 0)`)
	psi := cind.MustNew(sch, "incl", "r", []string{"x"}, nil, "s", []string{"a"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	rows := queryStrings(t, db, AntiJoinQuery(psi.NormalForm()[0], []string{"x", "y"}, "__seq"))
	// Only k1 is unmatched; the NULL x finds the NULL s-tuple.
	if len(rows) != 1 || rows[0][0] != "k1" {
		t.Fatalf("anti-join returned %v, want only the k1 tuple", rows)
	}
}

func TestGroupQuery(t *testing.T) {
	sch := nullSchema()
	wild := cfd.MustNew(sch, "wild", "r", []string{"x"}, []string{"y"},
		[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	want := `SELECT t."x" FROM "r" t GROUP BY t."x" ` +
		`HAVING COUNT(DISTINCT t."y") + MAX(CASE WHEN t."y" IS NULL THEN 1 ELSE 0 END) > 1`
	if q := GroupQuery(wild.NormalForm()[0]); q != want {
		t.Fatalf("wild GroupQuery:\n got: %s\nwant: %s", q, want)
	}
	konst := cfd.MustNew(sch, "const", "r", []string{"x"}, []string{"y"},
		[]cfd.Row{{LHS: pattern.Tup(pattern.Sym("g")), RHS: pattern.Tup(pattern.Sym("v"))}})
	want = `SELECT t."x" FROM "r" t WHERE t."x" = 'g' AND (t."y" <> 'v' OR t."y" IS NULL) GROUP BY t."x"`
	if q := GroupQuery(konst.NormalForm()[0]); q != want {
		t.Fatalf("const GroupQuery:\n got: %s\nwant: %s", q, want)
	}
	// Empty X degenerates to one implicit group; a returned row marks it
	// as violating.
	emptyConst := cfd.MustNew(sch, "ec", "r", nil, []string{"y"},
		[]cfd.Row{{LHS: pattern.Tup(), RHS: pattern.Tup(pattern.Sym("v"))}})
	want = `SELECT COUNT(*) FROM "r" t WHERE (t."y" <> 'v' OR t."y" IS NULL) HAVING COUNT(*) > 0`
	if q := GroupQuery(emptyConst.NormalForm()[0]); q != want {
		t.Fatalf("empty-X const GroupQuery:\n got: %s\nwant: %s", q, want)
	}
	emptyWild := cfd.MustNew(sch, "ew", "r", nil, []string{"y"},
		[]cfd.Row{{LHS: pattern.Tup(), RHS: pattern.Wilds(1)}})
	want = `SELECT COUNT(*) FROM "r" t ` +
		`HAVING COUNT(DISTINCT t."y") + MAX(CASE WHEN t."y" IS NULL THEN 1 ELSE 0 END) > 1`
	if q := GroupQuery(emptyWild.NormalForm()[0]); q != want {
		t.Fatalf("empty-X wild GroupQuery:\n got: %s\nwant: %s", q, want)
	}
}

func TestMembersQuery(t *testing.T) {
	sch := nullSchema()
	c := cfd.MustNew(sch, "wild", "r", []string{"x"}, []string{"y"},
		[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	q, n := MembersQuery(c, []string{"x", "y"}, "__seq")
	want := `SELECT t."x", t."y", t."__seq" FROM "r" t ` +
		`WHERE (t."x" = ? OR (t."x" IS NULL AND ? IS NULL)) ORDER BY t."__seq"`
	if q != want {
		t.Fatalf("MembersQuery:\n got: %s\nwant: %s", q, want)
	}
	if n != 2 {
		t.Fatalf("MembersQuery params = %d, want 2", n)
	}
}

// TestExecBuildersOnMemdb runs the executable builders end-to-end: the
// group/members pair reconstructs groups in insertion order including the
// NULL group.
func TestExecBuildersOnMemdb(t *testing.T) {
	sch := nullSchema()
	db := openMem(t)
	mustExec(t, db, `CREATE TABLE "r" ("x" TEXT, "y" TEXT, "__seq" INTEGER)`)
	mustExec(t, db, `INSERT INTO "r" VALUES
		(NULL, 'a', 0), (NULL, 'b', 1),
		('g1', 'a', 2), ('g1', NULL, 3),
		('g2', 'a', 4)`)
	wild := cfd.MustNew(sch, "wild", "r", []string{"x"}, []string{"y"},
		[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	n := wild.NormalForm()[0]
	groups := queryStrings(t, db, GroupQuery(n))
	if !reflect.DeepEqual(groups, [][]string{{"<null>"}, {"g1"}}) {
		t.Fatalf("groups = %v", groups)
	}
	mq, np := MembersQuery(n, []string{"x", "y"}, "__seq")
	if np != 2 {
		t.Fatalf("params = %d", np)
	}
	members := queryStrings(t, db, mq, nil, nil)
	if !reflect.DeepEqual(members, [][]string{{"<null>", "a", "0"}, {"<null>", "b", "1"}}) {
		t.Fatalf("NULL-group members = %v", members)
	}
	members = queryStrings(t, db, mq, "g1", "g1")
	if !reflect.DeepEqual(members, [][]string{{"g1", "a", "2"}, {"g1", "<null>", "3"}}) {
		t.Fatalf("g1 members = %v", members)
	}
}

// TestForCINDEmptyXAndXp: the degenerate "some RHS tuple must exist with
// these constants" shape (Example 4.2's ψ) produces a well-formed
// existence query.
func TestForCINDEmptyXAndXp(t *testing.T) {
	sch := bank.Schema()
	psi := cind.MustNew(sch, "exists", "saving", nil, nil,
		"interest", nil, []string{"ct"},
		[]cind.Row{{LHS: pattern.Tup(), RHS: pattern.Tup(pattern.Sym("UK"))}})
	q := ForCIND(psi)[0]
	want := `SELECT t.* FROM "saving" t WHERE NOT EXISTS ` +
		`(SELECT 1 FROM "interest" s WHERE s."ct" = 'UK')`
	if q != want {
		t.Fatalf("query:\n got: %s\nwant: %s", q, want)
	}
}

func TestQuoting(t *testing.T) {
	if quoteLit("O'Hare") != "'O''Hare'" {
		t.Fatal("literal quoting wrong")
	}
	if quoteIdent(`we"ird`) != `"we""ird"` {
		t.Fatal("identifier quoting wrong")
	}
}

// TestQuotingEndToEnd executes generated queries whose identifiers embed
// double quotes and whose constants embed single quotes.
func TestQuotingEndToEnd(t *testing.T) {
	sch := schema.MustNew(schema.MustRelation(`we"ird`,
		schema.Attribute{Name: `co"l`, Dom: schema.Infinite("string")},
		schema.Attribute{Name: "v", Dom: schema.Infinite("string")}))
	db := openMem(t)
	mustExec(t, db, `CREATE TABLE "we""ird" ("co""l" TEXT, "v" TEXT, "__seq" INTEGER)`)
	mustExec(t, db, `INSERT INTO "we""ird" VALUES ('O''Hare', 'x', 0)`)
	c := cfd.MustNew(sch, "q", `we"ird`, []string{`co"l`}, []string{"v"},
		[]cfd.Row{{LHS: pattern.Tup(pattern.Sym("O'Hare")), RHS: pattern.Tup(pattern.Sym("y"))}})
	rows := queryStrings(t, db, ForCFD(c)[0].Single)
	if len(rows) != 1 || rows[0][1] != "x" {
		t.Fatalf("quoted single query returned %v", rows)
	}
	mq, _ := MembersQuery(c, []string{`co"l`, "v"}, "__seq")
	rows = queryStrings(t, db, mq, "O'Hare", "O'Hare")
	if len(rows) != 1 || rows[0][0] != "O'Hare" {
		t.Fatalf("quoted members query returned %v", rows)
	}
}

func TestTableauDDL(t *testing.T) {
	ddl := TableauDDL("T6", []string{"ab", "rt"}, []pattern.Tuple{
		pattern.Tup(pattern.Sym("EDI"), pattern.Sym("1.5%")),
		pattern.Tup(pattern.Wild, pattern.Wild),
	})
	for _, frag := range []string{
		`CREATE TABLE "T6" ("ab" TEXT, "rt" TEXT);`,
		`INSERT INTO "T6" VALUES ('EDI', '1.5%');`,
		`INSERT INTO "T6" VALUES ('_', '_');`,
	} {
		if !strings.Contains(ddl, frag) {
			t.Errorf("DDL missing %q:\n%s", frag, ddl)
		}
	}
}

// --- helpers ---

func mustExec(t *testing.T, db *sql.DB, q string, args ...any) {
	t.Helper()
	if _, err := db.Exec(q, args...); err != nil {
		t.Fatalf("exec %s: %v", q, err)
	}
}

// queryStrings scans all rows as strings, NULL rendered "<null>".
func queryStrings(t *testing.T, db *sql.DB, q string, args ...any) [][]string {
	t.Helper()
	rows, err := db.Query(q, args...)
	if err != nil {
		t.Fatalf("query %s: %v", q, err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	var out [][]string
	for rows.Next() {
		vals := make([]any, len(cols))
		ptrs := make([]any, len(cols))
		for i := range vals {
			ptrs[i] = &vals[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			t.Fatal(err)
		}
		rec := make([]string, len(cols))
		for i, v := range vals {
			switch x := v.(type) {
			case nil:
				rec[i] = "<null>"
			case []byte:
				rec[i] = string(x)
			default:
				rec[i] = fmt.Sprint(x)
			}
		}
		out = append(out, rec)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}
