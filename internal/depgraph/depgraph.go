// Package depgraph implements the dependency graph G[Σ] of Section 5.3:
// one vertex per relation, carrying the CFDs defined on it (CFD(R)) and a
// tuple template τ(R); one edge Ri → Rj per nonempty CIND(Ri, Rj). The
// preProcessing algorithm of Figure 7 reduces the graph; this package
// provides the graph structure, the topological order it consumes, and the
// strongly/weakly connected component analyses used by Checking.
package depgraph

import (
	"sort"

	"cind/internal/cfd"
	cind "cind/internal/core"
	"cind/internal/schema"
)

// Graph is G[Σ]. It is mutable: preProcessing deletes nodes and extends
// CFD sets with non-triggering CFDs.
type Graph struct {
	sch   *schema.Schema
	nodes map[string]bool
	cfds  map[string][]*cfd.CFD              // CFD(R), normalised
	edges map[string]map[string][]*cind.CIND // from -> to -> CIND(Ri, Rj)
}

// New builds G[Σ] from normalised constraint sets. Constraints are
// normalised internally, so callers may pass any valid CFDs/CINDs.
func New(sch *schema.Schema, cfds []*cfd.CFD, cinds []*cind.CIND) *Graph {
	g := &Graph{
		sch:   sch,
		nodes: map[string]bool{},
		cfds:  map[string][]*cfd.CFD{},
		edges: map[string]map[string][]*cind.CIND{},
	}
	for _, r := range sch.Relations() {
		g.nodes[r.Name()] = true
	}
	for _, c := range cfd.NormalizeAll(cfds) {
		g.cfds[c.Rel] = append(g.cfds[c.Rel], c)
	}
	for _, c := range cind.NormalizeAll(cinds) {
		if g.edges[c.LHSRel] == nil {
			g.edges[c.LHSRel] = map[string][]*cind.CIND{}
		}
		g.edges[c.LHSRel][c.RHSRel] = append(g.edges[c.LHSRel][c.RHSRel], c)
	}
	return g
}

// Schema returns the underlying schema.
func (g *Graph) Schema() *schema.Schema { return g.sch }

// Nodes returns the surviving relation names, sorted.
func (g *Graph) Nodes() []string {
	out := make([]string, 0, len(g.nodes))
	for n := range g.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Has reports whether the relation is still in the graph.
func (g *Graph) Has(rel string) bool { return g.nodes[rel] }

// Len returns the number of surviving nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// CFDs returns CFD(R) (normalised). Callers must not mutate the slice.
func (g *Graph) CFDs(rel string) []*cfd.CFD { return g.cfds[rel] }

// AddCFDs extends CFD(R) — how preProcessing installs non-triggering CFDs.
func (g *Graph) AddCFDs(rel string, more ...*cfd.CFD) {
	g.cfds[rel] = append(g.cfds[rel], more...)
}

// OutCINDs returns the CINDs on edges leaving rel toward surviving nodes.
func (g *Graph) OutCINDs(rel string) []*cind.CIND {
	var out []*cind.CIND
	for to, cs := range g.edges[rel] {
		if g.nodes[to] {
			out = append(out, cs...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// InEdges returns, for each surviving predecessor Rj of rel, the CIND set
// CIND(Rj, rel) — the input to the non-triggering construction.
func (g *Graph) InEdges(rel string) map[string][]*cind.CIND {
	out := map[string][]*cind.CIND{}
	for from, tos := range g.edges {
		if !g.nodes[from] || from == rel {
			continue
		}
		if cs, ok := tos[rel]; ok && len(cs) > 0 {
			out[from] = cs
		}
	}
	return out
}

// InDegree counts surviving predecessors with an edge into rel, excluding
// self-loops.
func (g *Graph) InDegree(rel string) int { return len(g.InEdges(rel)) }

// Remove deletes a node and implicitly all its edges.
func (g *Graph) Remove(rel string) { delete(g.nodes, rel) }

// succs returns the distinct surviving successors of rel (self excluded).
func (g *Graph) succs(rel string) []string {
	var out []string
	for to := range g.edges[rel] {
		if g.nodes[to] && to != rel {
			out = append(out, to)
		}
	}
	sort.Strings(out)
	return out
}

// TopoOrder returns the processing order of Figure 7 line 1: if there is an
// edge Ri → Rj (Ri's CINDs point into Rj), then Rj precedes Ri; nodes on a
// cycle come in arbitrary (deterministic) order. Implemented as Tarjan's
// SCC algorithm, whose natural emission order is exactly
// successors-before-predecessors on the condensation.
func (g *Graph) TopoOrder() []string {
	var order []string
	for _, comp := range g.SCCs() {
		order = append(order, comp...)
	}
	return order
}

// SCCs returns the strongly connected components in successor-first order
// (reverse topological order of the condensation), each component sorted.
func (g *Graph) SCCs() [][]string {
	nodes := g.Nodes()
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var comps [][]string

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, to := range g.succs(v) {
			if _, seen := index[to]; !seen {
				strongconnect(to)
				if low[to] < low[v] {
					low[v] = low[to]
				}
			} else if onStack[to] && index[to] < low[v] {
				low[v] = index[to]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			sort.Strings(comp)
			comps = append(comps, comp)
		}
	}
	for _, v := range nodes {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return comps
}

// IsAcyclic reports whether the surviving graph has no cycles (self-loops
// included). The paper's conclusion singles out acyclic CINDs as a case
// where better complexity bounds may hold; operationally, a chase over an
// acyclic CIND set can only insert tuples along the condensation order and
// therefore terminates without any cap.
func (g *Graph) IsAcyclic() bool {
	for _, comp := range g.SCCs() {
		if len(comp) > 1 {
			return false
		}
		rel := comp[0]
		if cs, ok := g.edges[rel][rel]; ok && len(cs) > 0 && g.nodes[rel] {
			return false // self-loop
		}
	}
	return true
}

// WeakComponents returns the weakly connected components of the surviving
// graph, each sorted, in deterministic order — the "connected components"
// Checking iterates over (Figure 9, line 6). Every CIND among a component's
// relations stays inside the component, so the per-component Σ' is closed.
func (g *Graph) WeakComponents() [][]string {
	parent := map[string]string{}
	var find func(x string) string
	find = func(x string) string {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for n := range g.nodes {
		parent[n] = n
	}
	for from, tos := range g.edges {
		if !g.nodes[from] {
			continue
		}
		for to := range tos {
			if g.nodes[to] {
				union(from, to)
			}
		}
	}
	groups := map[string][]string{}
	for n := range g.nodes {
		r := find(n)
		groups[r] = append(groups[r], n)
	}
	var out [][]string
	for _, members := range groups {
		sort.Strings(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// ConstraintsOf collects the CFDs and CINDs restricted to a set of
// relations — Σ' of Figure 9 line 7. CINDs are included only when both
// endpoints are inside. The output order is deterministic (input relation
// order, edges per relation by target name): Checking chases Σ' with a
// seeded rng, so map-order iteration here would make same-seed runs
// diverge.
func (g *Graph) ConstraintsOf(rels []string) ([]*cfd.CFD, []*cind.CIND) {
	in := map[string]bool{}
	for _, r := range rels {
		in[r] = true
	}
	var cfds []*cfd.CFD
	var cinds []*cind.CIND
	for _, r := range rels {
		cfds = append(cfds, g.cfds[r]...)
		tos := make([]string, 0, len(g.edges[r]))
		for to := range g.edges[r] {
			if in[to] {
				tos = append(tos, to)
			}
		}
		sort.Strings(tos)
		for _, to := range tos {
			cinds = append(cinds, g.edges[r][to]...)
		}
	}
	return cfds, cinds
}
