package depgraph

import (
	"strings"
	"testing"

	"cind/internal/cfd"
	cind "cind/internal/core"
	"cind/internal/pattern"
	"cind/internal/schema"
)

var w = pattern.Wild

func sym(v string) pattern.Symbol { return pattern.Sym(v) }

// example54Schema builds R1..R5 of Example 5.4: two attributes each over a
// shared infinite domain, except R2.H which is Boolean.
func example54Schema() *schema.Schema {
	d := schema.Infinite("d")
	h := schema.Finite("bool", "0", "1")
	mk := func(name, a, b string, bd *schema.Domain) *schema.Relation {
		return schema.MustRelation(name,
			schema.Attribute{Name: a, Dom: d}, schema.Attribute{Name: b, Dom: bd})
	}
	return schema.MustNew(
		mk("R1", "E", "F", d),
		mk("R2", "G", "H", h),
		mk("R3", "A", "B", d),
		mk("R4", "C", "D", d),
		mk("R5", "I", "J", d),
	)
}

// example54Constraints builds Σ of Example 5.4 (with the original ψ4).
func example54Constraints(sch *schema.Schema) ([]*cfd.CFD, []*cind.CIND) {
	cfds := []*cfd.CFD{
		cfd.MustNew(sch, "phi1", "R1", []string{"E"}, []string{"F"},
			[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}}),
		cfd.MustNew(sch, "phi2", "R2", []string{"H"}, []string{"G"},
			[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Tup(sym("c"))}}),
		cfd.MustNew(sch, "phi3", "R3", []string{"A"}, []string{"B"},
			[]cfd.Row{{LHS: pattern.Tup(sym("c")), RHS: pattern.Wilds(1)}}),
		cfd.MustNew(sch, "phi4", "R4", []string{"C"}, []string{"D"},
			[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Tup(sym("a"))}}),
		cfd.MustNew(sch, "phi5", "R4", []string{"C"}, []string{"D"},
			[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Tup(sym("b"))}}),
		cfd.MustNew(sch, "phi6", "R5", []string{"I"}, []string{"J"},
			[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Tup(sym("c"))}}),
	}
	cinds := []*cind.CIND{
		cind.MustNew(sch, "psi1", "R1", []string{"E"}, nil, "R2", []string{"G"}, nil,
			[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}}),
		cind.MustNew(sch, "psi2", "R2", nil, []string{"H"}, "R1", nil, []string{"F"},
			[]cind.Row{{LHS: pattern.Tup(sym("0")), RHS: pattern.Tup(sym("a"))}}),
		cind.MustNew(sch, "psi3", "R2", nil, []string{"H"}, "R1", nil, []string{"F"},
			[]cind.Row{{LHS: pattern.Tup(sym("1")), RHS: pattern.Tup(sym("b"))}}),
		cind.MustNew(sch, "psi4", "R3", []string{"A"}, []string{"B"}, "R4", []string{"C"}, nil,
			[]cind.Row{{LHS: pattern.Tup(w, sym("b")), RHS: pattern.Tup(w)}}),
		cind.MustNew(sch, "psi5", "R5", nil, []string{"J"}, "R2", nil, []string{"G"},
			[]cind.Row{{LHS: pattern.Tup(sym("c")), RHS: pattern.Tup(sym("d"))}}),
	}
	return cfds, cinds
}

// TestExample54Graph checks the Figure 6 structure: CFD(Ri) assignments and
// the edge set {R1→R2, R2→R1, R3→R4, R5→R2}.
func TestExample54Graph(t *testing.T) {
	sch := example54Schema()
	cfds, cinds := example54Constraints(sch)
	g := New(sch, cfds, cinds)

	if g.Len() != 5 {
		t.Fatalf("nodes = %d", g.Len())
	}
	wantCFDs := map[string]int{"R1": 1, "R2": 1, "R3": 1, "R4": 2, "R5": 1}
	for rel, n := range wantCFDs {
		if got := len(g.CFDs(rel)); got != n {
			t.Errorf("|CFD(%s)| = %d, want %d", rel, got, n)
		}
	}
	if len(g.OutCINDs("R1")) != 1 || len(g.OutCINDs("R2")) != 2 ||
		len(g.OutCINDs("R3")) != 1 || len(g.OutCINDs("R5")) != 1 {
		t.Error("edge labels wrong")
	}
	if g.InDegree("R2") != 2 { // from R1 and R5
		t.Errorf("indegree(R2) = %d, want 2", g.InDegree("R2"))
	}
	if g.InDegree("R3") != 0 || g.InDegree("R5") != 0 {
		t.Error("R3 and R5 have no incoming edges")
	}
}

func TestTopoOrderSuccessorsFirst(t *testing.T) {
	sch := example54Schema()
	cfds, cinds := example54Constraints(sch)
	g := New(sch, cfds, cinds)
	order := g.TopoOrder()
	pos := map[string]int{}
	for i, r := range order {
		pos[r] = i
	}
	if len(order) != 5 {
		t.Fatalf("order = %v", order)
	}
	// Edge R3→R4 means R4 precedes R3; edge R5→R2 means R2 precedes R5.
	if pos["R4"] > pos["R3"] {
		t.Errorf("R4 must precede R3 in %v", order)
	}
	if pos["R2"] > pos["R5"] {
		t.Errorf("R2 must precede R5 in %v", order)
	}
}

func TestSCCs(t *testing.T) {
	sch := example54Schema()
	cfds, cinds := example54Constraints(sch)
	g := New(sch, cfds, cinds)
	comps := g.SCCs()
	var cycle []string
	singles := 0
	for _, c := range comps {
		if len(c) == 2 {
			cycle = c
		} else {
			singles++
		}
	}
	if strings.Join(cycle, ",") != "R1,R2" {
		t.Fatalf("cycle component = %v, want [R1 R2]", cycle)
	}
	if singles != 3 {
		t.Fatalf("singleton components = %d, want 3", singles)
	}
}

func TestWeakComponents(t *testing.T) {
	sch := example54Schema()
	cfds, cinds := example54Constraints(sch)
	g := New(sch, cfds, cinds)
	comps := g.WeakComponents()
	// {R1, R2, R5} and {R3, R4}.
	if len(comps) != 2 {
		t.Fatalf("weak components = %v", comps)
	}
	if strings.Join(comps[0], ",") != "R1,R2,R5" {
		t.Fatalf("comp0 = %v", comps[0])
	}
	if strings.Join(comps[1], ",") != "R3,R4" {
		t.Fatalf("comp1 = %v", comps[1])
	}
}

func TestRemoveAndInEdges(t *testing.T) {
	sch := example54Schema()
	cfds, cinds := example54Constraints(sch)
	g := New(sch, cfds, cinds)
	in := g.InEdges("R4")
	if len(in) != 1 || len(in["R3"]) != 1 {
		t.Fatalf("InEdges(R4) = %v", in)
	}
	g.Remove("R4")
	if g.Has("R4") {
		t.Fatal("R4 must be gone")
	}
	if len(g.OutCINDs("R3")) != 0 {
		t.Fatal("edges into deleted nodes must disappear")
	}
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
}

func TestConstraintsOf(t *testing.T) {
	sch := example54Schema()
	cfds, cinds := example54Constraints(sch)
	g := New(sch, cfds, cinds)
	compCFDs, compCINDs := g.ConstraintsOf([]string{"R1", "R2"})
	if len(compCFDs) != 2 { // phi1, phi2
		t.Fatalf("component CFDs = %d", len(compCFDs))
	}
	if len(compCINDs) != 3 { // psi1, psi2, psi3
		t.Fatalf("component CINDs = %d", len(compCINDs))
	}
}

func TestSelfLoopCountsAsOutEdgeNotInDegree(t *testing.T) {
	d := schema.Infinite("d")
	sch := schema.MustNew(schema.MustRelation("R",
		schema.Attribute{Name: "A", Dom: d}, schema.Attribute{Name: "B", Dom: d}))
	self := cind.MustNew(sch, "self", "R", nil, nil, "R", nil, []string{"B"},
		[]cind.Row{{LHS: pattern.Tup(), RHS: pattern.Tup(sym("b"))}})
	g := New(sch, nil, []*cind.CIND{self})
	if len(g.OutCINDs("R")) != 1 {
		t.Fatal("self-loop must appear among out-CINDs (it can be triggered)")
	}
	if g.InDegree("R") != 0 {
		t.Fatal("self-loops do not protect a node from indegree-0 pruning")
	}
}

func TestIsAcyclic(t *testing.T) {
	sch := example54Schema()
	cfds, cinds := example54Constraints(sch)
	g := New(sch, cfds, cinds)
	if g.IsAcyclic() {
		t.Fatal("R1↔R2 is a cycle")
	}
	// Removing R2 breaks the only cycle.
	g.Remove("R2")
	if !g.IsAcyclic() {
		t.Fatal("graph without R2 is acyclic")
	}
	// A self-loop counts as a cycle.
	d := schema.Infinite("d")
	sch2 := schema.MustNew(schema.MustRelation("R",
		schema.Attribute{Name: "A", Dom: d}, schema.Attribute{Name: "B", Dom: d}))
	self := cind.MustNew(sch2, "self", "R", []string{"A"}, nil, "R", []string{"B"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	g2 := New(sch2, nil, []*cind.CIND{self})
	if g2.IsAcyclic() {
		t.Fatal("self-loop is a cycle")
	}
}

func TestAddCFDs(t *testing.T) {
	sch := example54Schema()
	g := New(sch, nil, nil)
	extra := cfd.MustNew(sch, "x", "R1", []string{"E"}, []string{"F"},
		[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	g.AddCFDs("R1", extra)
	if len(g.CFDs("R1")) != 1 {
		t.Fatal("AddCFDs must extend CFD(R1)")
	}
}

// TestWeakComponentsDeterministicOrder: WeakComponents is built from map
// iteration internally, so its ordering guarantee — components sorted by
// their first (lexicographically smallest) relation, members sorted — must
// hold identically across repeated calls and across graphs built from
// permuted constraint input. Checking's parallel component fan-out merges
// by index, so this ordering is load-bearing for its determinism.
func TestWeakComponentsDeterministicOrder(t *testing.T) {
	sch := example54Schema()
	cfds, cinds := example54Constraints(sch)

	want := ""
	for run := 0; run < 20; run++ {
		// Permute the constraint input: rotate both slices by run.
		rc := append(append([]*cfd.CFD(nil), cfds[run%len(cfds):]...), cfds[:run%len(cfds)]...)
		ri := append(append([]*cind.CIND(nil), cinds[run%len(cinds):]...), cinds[:run%len(cinds)]...)
		g := New(sch, rc, ri)
		var parts []string
		for _, comp := range g.WeakComponents() {
			for i := 1; i < len(comp); i++ {
				if comp[i-1] >= comp[i] {
					t.Fatalf("run %d: component %v not sorted", run, comp)
				}
			}
			parts = append(parts, strings.Join(comp, "+"))
		}
		for i := 1; i < len(parts); i++ {
			if parts[i-1] >= parts[i] {
				t.Fatalf("run %d: components %v not in deterministic order", run, parts)
			}
		}
		got := strings.Join(parts, " | ")
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("run %d: WeakComponents = %q, want %q", run, got, want)
		}
	}
	if want != "R1+R2+R5 | R3+R4" {
		t.Fatalf("Example 5.4 weak components = %q, want %q", want, "R1+R2+R5 | R3+R4")
	}
}

// TestSCCsDeterministicOrder: SCCs must emit the same components, each
// sorted, in the same (successor-first) order on every call and under
// permuted constraint input.
func TestSCCsDeterministicOrder(t *testing.T) {
	sch := example54Schema()
	cfds, cinds := example54Constraints(sch)

	want := ""
	for run := 0; run < 20; run++ {
		rc := append(append([]*cfd.CFD(nil), cfds[run%len(cfds):]...), cfds[:run%len(cfds)]...)
		ri := append(append([]*cind.CIND(nil), cinds[run%len(cinds):]...), cinds[:run%len(cinds)]...)
		g := New(sch, rc, ri)
		var parts []string
		for _, comp := range g.SCCs() {
			for i := 1; i < len(comp); i++ {
				if comp[i-1] >= comp[i] {
					t.Fatalf("run %d: SCC %v not sorted", run, comp)
				}
			}
			parts = append(parts, strings.Join(comp, "+"))
		}
		got := strings.Join(parts, " | ")
		if want == "" {
			want = got
		} else if got != want {
			t.Fatalf("run %d: SCCs = %q, want %q", run, got, want)
		}
	}
	// Successor-first: the {R1, R2} cycle precedes its predecessor R5, and
	// R4 precedes R3.
	if want != "R1+R2 | R4 | R3 | R5" {
		t.Fatalf("Example 5.4 SCCs = %q, want %q", want, "R1+R2 | R4 | R3 | R5")
	}
}

// TestConstraintsOfDeterministicOrder: a relation with CINDs into two
// distinct RHS relations must yield the same Σ' slice order on every call
// — ConstraintsOf feeds the seeded chase of Checking, so map-order
// iteration here would break same-seed reproducibility.
func TestConstraintsOfDeterministicOrder(t *testing.T) {
	d := schema.Infinite("d")
	mk := func(name string) *schema.Relation {
		return schema.MustRelation(name,
			schema.Attribute{Name: "A", Dom: d}, schema.Attribute{Name: "B", Dom: d})
	}
	sch := schema.MustNew(mk("R"), mk("S"), mk("T"))
	mkCIND := func(id, to string) *cind.CIND {
		return cind.MustNew(sch, id, "R", []string{"A"}, nil, to, []string{"A"}, nil,
			[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	}
	cinds := []*cind.CIND{mkCIND("toT", "T"), mkCIND("toS", "S"), mkCIND("toT2", "T")}
	g := New(sch, nil, cinds)
	want := ""
	for run := 0; run < 50; run++ {
		_, got := g.ConstraintsOf([]string{"R", "S", "T"})
		ids := make([]string, len(got))
		for i, c := range got {
			ids[i] = c.ID
		}
		s := strings.Join(ids, ",")
		if want == "" {
			want = s
		} else if s != want {
			t.Fatalf("run %d: ConstraintsOf order %q, want %q", run, s, want)
		}
	}
	// Targets sorted by name (S before T), edges within a target in input
	// order.
	if want != "toS,toT,toT2" {
		t.Fatalf("ConstraintsOf order = %q, want toS,toT,toT2", want)
	}
}
