// Package sqlbackend executes constraint detection through database/sql:
// the [9]-style SQL technique the paper's conclusion names as the ongoing
// line of work ("SQL-based techniques for detecting CIND violations in
// real-life data along the same line as [9]"). It mirrors an in-memory
// database into SQL tables (schema DDL plus bulk ingest), runs the
// executable queries of internal/sqlgen — candidate-group and member
// queries per normal-form CFD row, one anti-join per normal-form CIND row
// — and folds the result rows back into the violation report the
// in-memory engine would produce: the same violations, in the same order,
// so Checker.Detect/Violations and ?limit= behave identically under
// either backend.
//
// Any database/sql driver works. The container this module builds in is
// offline, so an external embedded engine (modernc.org/sqlite) cannot be
// vendored as the default; internal/memdb provides a zero-dependency
// embedded engine implementing exactly the SQL subset sqlgen emits, and
// Open accepts any registered driver by name — "sqlite:PATH" works
// unchanged once a SQLite driver is linked in.
//
// The value mapping is NULL-faithful: the in-memory engine's empty string
// ingests as SQL NULL and reads back as the empty string, which is why
// every query sqlgen emits is NULL-aware (see that package). Data must be
// ground — chase variables have no SQL representation and are rejected.
package sqlbackend

import (
	"context"
	"database/sql"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cind/internal/cfd"
	cind "cind/internal/core"
	"cind/internal/instance"
	"cind/internal/memdb"
	"cind/internal/sqlgen"
	"cind/internal/types"
	"cind/internal/violation"
)

// SeqColumn is the hidden column every relation mirror carries: the
// tuple's insertion rank in the source instance. Detection queries order
// by it, which is how SQL result sets are folded back into the in-memory
// engine's report order.
const SeqColumn = "__cind_seq"

var openSeq atomic.Int64

// Open opens a database handle from a backend spec of the form
// "driver:dsn" — e.g. "mem:" for the embedded zero-dependency engine or
// "sqlite:violations.db" when a SQLite driver is linked in. The driver
// must be registered with database/sql; unknown names error listing the
// registered drivers. An empty DSN with the embedded engine yields a
// fresh private database per Open.
func Open(spec string) (*sql.DB, error) {
	name, dsn, ok := strings.Cut(spec, ":")
	if !ok || name == "" {
		return nil, fmt.Errorf("sqlbackend: backend spec %q is not of the form driver:dsn", spec)
	}
	if !slices.Contains(sql.Drivers(), name) {
		return nil, fmt.Errorf("sqlbackend: no database/sql driver %q (registered: %s)",
			name, strings.Join(sql.Drivers(), ", "))
	}
	if name == memdb.DriverName && dsn == "" {
		dsn = fmt.Sprintf("sqlbackend-auto-%d", openSeq.Add(1))
	}
	return sql.Open(name, dsn)
}

// version mirrors instance.Instance.Version.
type version struct {
	nextSeq int64
	n       int
}

// Backend runs detection over one *sql.DB. It owns the mirror tables it
// creates (one per relation, named after it) and re-ingests a relation
// only when its source instance's Version changed. A Backend serializes
// its own calls; distinct Backends must not share mirror tables.
type Backend struct {
	db   *sql.DB
	mu   sync.Mutex
	seen map[string]version
}

// New returns a Backend over db. The handle is used, not owned: Close
// remains the caller's responsibility.
func New(db *sql.DB) *Backend {
	return &Backend{db: db, seen: make(map[string]version)}
}

// DB returns the underlying handle.
func (b *Backend) DB() *sql.DB { return b.db }

// Detect evaluates every constraint against src through SQL and returns
// the violation report: violations grouped per constraint in input order,
// exactly as violation.Detect produces — the differential suite asserts
// equality violation for violation. A positive limit returns the first
// limit violations of the unlimited run (the CFD-then-CIND concatenation
// prefix, like detect.Options.Limit). ctx cancels between and inside
// queries via QueryContext.
func (b *Backend) Detect(ctx context.Context, src *instance.Database, cfds []*cfd.CFD, cinds []*cind.CIND, limit int) (*violation.Report, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.sync(ctx, src); err != nil {
		return nil, err
	}
	rep := &violation.Report{}
	full := func() bool { return limit > 0 && len(rep.CFD)+len(rep.CIND) >= limit }
	for _, c := range cfds {
		if full() {
			break
		}
		vs, err := b.cfdViolations(ctx, src, c)
		if err != nil {
			return nil, err
		}
		rep.CFD = append(rep.CFD, vs...)
	}
	for _, c := range cinds {
		if full() {
			break
		}
		vs, err := b.cindViolations(ctx, src, c)
		if err != nil {
			return nil, err
		}
		rep.CIND = append(rep.CIND, vs...)
	}
	return rep.Truncate(limit), nil
}

// sync brings the mirror tables up to date with src: tables are created
// on first sight of a relation and re-ingested whole when the instance's
// Version changed. Empty strings ingest as NULL (the engines' shared
// "no value"); chase variables are rejected.
func (b *Backend) sync(ctx context.Context, src *instance.Database) error {
	for _, rel := range src.Schema().Relations() {
		name := rel.Name()
		in := src.Instance(name)
		next, n := in.Version()
		cur := version{next, n}
		prev, known := b.seen[name]
		if known && prev == cur {
			continue
		}
		if !known {
			if rel.Has(SeqColumn) {
				return fmt.Errorf("sqlbackend: relation %s uses the reserved column %s", name, SeqColumn)
			}
			if _, err := b.db.ExecContext(ctx, sqlgen.RelationDDL(rel, SeqColumn)); err != nil {
				return fmt.Errorf("sqlbackend: create mirror %s: %w", name, err)
			}
		} else {
			if _, err := b.db.ExecContext(ctx, sqlgen.DeleteAllStmt(name)); err != nil {
				return fmt.Errorf("sqlbackend: clear mirror %s: %w", name, err)
			}
		}
		ins, err := b.db.PrepareContext(ctx, sqlgen.InsertStmt(rel))
		if err != nil {
			return fmt.Errorf("sqlbackend: prepare ingest %s: %w", name, err)
		}
		for seq, t := range in.Tuples() {
			args := make([]any, 0, rel.Arity()+1)
			for _, v := range t {
				if v.IsVar() {
					ins.Close()
					return fmt.Errorf("sqlbackend: relation %s holds chase variable %s; SQL detection requires ground data", name, v)
				}
				if s := v.Str(); s != "" {
					args = append(args, s)
				} else {
					args = append(args, nil)
				}
			}
			args = append(args, int64(seq))
			if _, err := ins.ExecContext(ctx, args...); err != nil {
				ins.Close()
				return fmt.Errorf("sqlbackend: ingest %s: %w", name, err)
			}
		}
		ins.Close()
		b.seen[name] = cur
	}
	return nil
}

// cfdViolations reproduces cfd.CFD.Violations through SQL. Per pattern
// row, the candidate violating X-groups are the union of the normal-form
// components' group-query results (a group violates iff some component
// flags it: a wildcard-RHS component fires on non-unique values, a
// constant-RHS component on a failing tuple). The members query then
// fetches each group in insertion order, and the reference
// partition-and-pair enumeration runs over those members alone — so the
// SQL engine does the scanning and grouping, and the output order is the
// reference order by construction (groups sorted by first-member rank).
func (b *Backend) cfdViolations(ctx context.Context, src *instance.Database, c *cfd.CFD) ([]cfd.Violation, error) {
	in := src.Instance(c.Rel)
	rel := in.Relation()
	tuples := in.Tuples()
	yi := rel.Cols(c.Y)
	norm := c.NormalForm()
	nY := len(c.Y)

	membersQ, nparams := sqlgen.MembersQuery(c, nil, SeqColumn)
	members, err := b.db.PrepareContext(ctx, membersQ)
	if err != nil {
		return nil, fmt.Errorf("sqlbackend: %s: prepare members: %w", c.ID, err)
	}
	defer members.Close()

	var out []cfd.Violation
	for ri, row := range c.Rows {
		// Candidate groups: union of the row's component group queries,
		// first flagged first. Keys are the group's X values with NULL
		// read back as the empty string.
		var keys [][]any
		seen := map[string]bool{}
		for j := 0; j < nY; j++ {
			gq := sqlgen.GroupQuery(norm[ri*nY+j])
			rows, err := b.db.QueryContext(ctx, gq)
			if err != nil {
				return nil, fmt.Errorf("sqlbackend: %s: group query: %w", c.ID, err)
			}
			for rows.Next() {
				if len(c.X) == 0 {
					// The query returns a row iff the single implicit
					// group violates.
					if !seen[""] {
						seen[""] = true
						keys = append(keys, nil)
					}
					continue
				}
				vals := make([]sql.NullString, len(c.X))
				ptrs := make([]any, len(c.X))
				for i := range vals {
					ptrs[i] = &vals[i]
				}
				if err := rows.Scan(ptrs...); err != nil {
					rows.Close()
					return nil, fmt.Errorf("sqlbackend: %s: scan group: %w", c.ID, err)
				}
				key, params := groupKey(vals)
				if !seen[key] {
					seen[key] = true
					keys = append(keys, params)
				}
			}
			if err := rows.Close(); err != nil {
				return nil, err
			}
			if err := rows.Err(); err != nil {
				return nil, fmt.Errorf("sqlbackend: %s: group query: %w", c.ID, err)
			}
		}
		if len(keys) == 0 {
			continue
		}
		// Fetch each candidate group's members in insertion order.
		type group struct {
			members []instance.Tuple
			first   int64
		}
		groups := make([]group, 0, len(keys))
		for _, params := range keys {
			args := make([]any, 0, nparams)
			for _, p := range params {
				args = append(args, p, p) // null-safe equality binds twice
			}
			rows, err := members.QueryContext(ctx, args...)
			if err != nil {
				return nil, fmt.Errorf("sqlbackend: %s: members query: %w", c.ID, err)
			}
			g := group{first: -1}
			for rows.Next() {
				var seq int64
				if err := rows.Scan(&seq); err != nil {
					rows.Close()
					return nil, fmt.Errorf("sqlbackend: %s: scan member: %w", c.ID, err)
				}
				if seq < 0 || seq >= int64(len(tuples)) {
					rows.Close()
					return nil, fmt.Errorf("sqlbackend: %s: mirror row %d outside instance %s (stale mirror?)", c.ID, seq, c.Rel)
				}
				if g.first < 0 {
					g.first = seq
				}
				g.members = append(g.members, tuples[seq])
			}
			if err := rows.Close(); err != nil {
				return nil, err
			}
			if err := rows.Err(); err != nil {
				return nil, fmt.Errorf("sqlbackend: %s: members query: %w", c.ID, err)
			}
			if len(g.members) > 0 {
				groups = append(groups, g)
			}
		}
		// First-seen group order = ascending first-member rank.
		sort.Slice(groups, func(i, j int) bool { return groups[i].first < groups[j].first })

		// Reference enumeration (cfd.CFD.Violations) over each group's
		// members: partition by Y projection, pairs within a
		// pattern-failing partition first, cross-partition pairs after.
		for _, g := range groups {
			parts := map[string][]instance.Tuple{}
			var pOrder []string
			patOK := map[string]bool{}
			for _, t := range g.members {
				y := t.Project(yi)
				pk := projKey(y)
				if _, ok := parts[pk]; !ok {
					pOrder = append(pOrder, pk)
					patOK[pk] = row.RHS.Matches(y)
				}
				parts[pk] = append(parts[pk], t)
			}
			for _, pk := range pOrder {
				if patOK[pk] {
					continue
				}
				part := parts[pk]
				for i := 0; i < len(part); i++ {
					for j := i; j < len(part); j++ {
						out = append(out, cfd.Violation{CFD: c, RowIdx: ri, T1: part[i], T2: part[j]})
					}
				}
			}
			for pi := 0; pi < len(pOrder); pi++ {
				for pj := pi + 1; pj < len(pOrder); pj++ {
					for _, t1 := range parts[pOrder[pi]] {
						for _, t2 := range parts[pOrder[pj]] {
							out = append(out, cfd.Violation{CFD: c, RowIdx: ri, T1: t1, T2: t2})
						}
					}
				}
			}
		}
	}
	return out, nil
}

// cindViolations reproduces cind.CIND.Violations through SQL: one
// anti-join per pattern row (its normal-form component — Proposition 3.1
// keeps them aligned one to one), ordered by insertion rank, which is
// exactly the reference's LHS scan order.
func (b *Backend) cindViolations(ctx context.Context, src *instance.Database, c *cind.CIND) ([]cind.Violation, error) {
	in := src.Instance(c.LHSRel)
	tuples := in.Tuples()
	norm := c.NormalForm()
	var out []cind.Violation
	for ri := range c.Rows {
		q := sqlgen.AntiJoinQuery(norm[ri], nil, SeqColumn)
		rows, err := b.db.QueryContext(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("sqlbackend: %s: anti-join: %w", c.ID, err)
		}
		for rows.Next() {
			var seq int64
			if err := rows.Scan(&seq); err != nil {
				rows.Close()
				return nil, fmt.Errorf("sqlbackend: %s: scan: %w", c.ID, err)
			}
			if seq < 0 || seq >= int64(len(tuples)) {
				rows.Close()
				return nil, fmt.Errorf("sqlbackend: %s: mirror row %d outside instance %s (stale mirror?)", c.ID, seq, c.LHSRel)
			}
			out = append(out, cind.Violation{CIND: c, RowIdx: ri, T: tuples[seq]})
		}
		if err := rows.Close(); err != nil {
			return nil, err
		}
		if err := rows.Err(); err != nil {
			return nil, fmt.Errorf("sqlbackend: %s: anti-join: %w", c.ID, err)
		}
	}
	return out, nil
}

// groupKey encodes a scanned group row into a dedup key plus the query
// parameters probing that group (NULL stays nil; non-NULL values pass as
// strings).
func groupKey(vals []sql.NullString) (string, []any) {
	var b []byte
	params := make([]any, 0, len(vals))
	for _, v := range vals {
		if v.Valid {
			b = append(b, 's')
			b = append(b, v.String...)
			params = append(params, v.String)
		} else {
			b = append(b, 'n')
			params = append(params, nil)
		}
		b = append(b, 0)
	}
	return string(b), params
}

// projKey mirrors the reference implementations' projection encoding.
func projKey(vals []types.Value) string {
	var b []byte
	for _, v := range vals {
		b = types.AppendKey(b, v)
	}
	return string(b)
}
