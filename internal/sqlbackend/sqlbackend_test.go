// Differential suite: the SQL backend must reproduce the in-memory
// engine's report violation for violation, in report order, on the bank
// running example and generated workloads, clean and dirty, including
// limits, NULL-bearing data, quoted identifiers and re-sync after
// mutation.
package sqlbackend

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"cind/internal/bank"
	"cind/internal/cfd"
	cind "cind/internal/core"
	"cind/internal/gen"
	"cind/internal/instance"
	"cind/internal/memdb"
	"cind/internal/pattern"
	"cind/internal/schema"
	"cind/internal/types"
	"cind/internal/violation"
)

func newBackend(t *testing.T) *Backend {
	t.Helper()
	db, err := Open("mem:")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return New(db)
}

// assertSameReport asserts SQL and in-memory reports are identical
// violation for violation, in order. Violations referencing the same
// constraints and tuples of the same database render identically, so the
// rendered report is a faithful equality check; counts are compared first
// for a readable failure.
func assertSameReport(t *testing.T, got, want *violation.Report) {
	t.Helper()
	if got.Total() != want.Total() {
		t.Fatalf("SQL backend found %d violations, in-memory engine %d\nsql:\n%s\nmemory:\n%s",
			got.Total(), want.Total(), got, want)
	}
	if len(got.CFD) != len(want.CFD) {
		t.Fatalf("CFD violations: %d vs %d", len(got.CFD), len(want.CFD))
	}
	for i := range want.CFD {
		g, w := got.CFD[i], want.CFD[i]
		if g.CFD != w.CFD || g.RowIdx != w.RowIdx || !g.T1.Eq(w.T1) || !g.T2.Eq(w.T2) {
			t.Fatalf("CFD violation %d differs:\n got: %v\nwant: %v", i, g, w)
		}
	}
	for i := range want.CIND {
		g, w := got.CIND[i], want.CIND[i]
		if g.CIND != w.CIND || g.RowIdx != w.RowIdx || !g.T.Eq(w.T) {
			t.Fatalf("CIND violation %d differs:\n got: %v\nwant: %v", i, g, w)
		}
	}
	if got.String() != want.String() {
		t.Fatalf("rendered reports differ:\nsql:\n%s\nmemory:\n%s", got, want)
	}
}

func detectBoth(t *testing.T, b *Backend, db *instance.Database, cfds []*cfd.CFD, cinds []*cind.CIND) (*violation.Report, *violation.Report) {
	t.Helper()
	got, err := b.Detect(context.Background(), db, cfds, cinds, 0)
	if err != nil {
		t.Fatal(err)
	}
	return got, violation.Detect(db, cfds, cinds)
}

func TestDifferentialBank(t *testing.T) {
	sch := bank.Schema()
	cfds, cinds := bank.CFDs(sch), bank.CINDs(sch)
	for _, tc := range []struct {
		name string
		db   *instance.Database
	}{
		{"dirty", bank.Data(sch)},
		{"clean", bank.CleanData(sch)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, want := detectBoth(t, newBackend(t), tc.db, cfds, cinds)
			assertSameReport(t, got, want)
			if tc.name == "clean" && !got.Clean() {
				t.Fatalf("clean bank data reported %d violations", got.Total())
			}
			if tc.name == "dirty" && got.Clean() {
				t.Fatal("dirty bank data reported clean")
			}
		})
	}
}

// dirtyWitness plants violations of both kinds in a workload's witness:
// per CFD an X-equal Y-unequal clone, per CIND RHS deletions stranding
// LHS demands.
func dirtyWitness(w *gen.Workload) *instance.Database {
	db := w.Witness.Clone()
	for i, c := range w.CFDs {
		if i >= 6 {
			break
		}
		in := db.Instance(c.Rel)
		ycol := in.Relation().Cols(c.Y)[0]
		tuples := in.Tuples()
		for i := 0; i < len(tuples) && i < 8; i++ {
			t := tuples[i]
			inserted := false
			for j := range tuples {
				if !tuples[j][ycol].Eq(t[ycol]) {
					mut := t.Clone()
					mut[ycol] = tuples[j][ycol]
					in.Insert(mut)
					inserted = true
					break
				}
			}
			if inserted {
				break
			}
		}
	}
	for i, c := range w.CINDs {
		if i >= 6 {
			break
		}
		in := db.Instance(c.RHSRel)
		for j := 0; j < 4 && in.Len() > 0; j++ {
			in.Delete(in.Tuples()[0])
		}
	}
	return db
}

func TestDifferentialGenerated(t *testing.T) {
	for _, seed := range []int64{1, 7} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			w := gen.New(gen.Config{Relations: 8, Card: 120, Consistent: true, Seed: seed})
			t.Run("clean", func(t *testing.T) {
				got, want := detectBoth(t, newBackend(t), w.Witness, w.CFDs, w.CINDs)
				assertSameReport(t, got, want)
			})
			t.Run("dirty", func(t *testing.T) {
				db := dirtyWitness(w)
				got, want := detectBoth(t, newBackend(t), db, w.CFDs, w.CINDs)
				assertSameReport(t, got, want)
				if got.Clean() {
					t.Fatal("dirtied witness reported clean")
				}
			})
		})
	}
}

// TestLimitIsUnlimitedPrefix: with a limit, the backend returns exactly
// the first n violations of the unlimited run — the contract WithLimit
// and ?limit= rely on.
func TestLimitIsUnlimitedPrefix(t *testing.T) {
	w := gen.New(gen.Config{Relations: 8, Card: 120, Consistent: true, Seed: 3})
	db := dirtyWitness(w)
	b := newBackend(t)
	full, err := b.Detect(context.Background(), db, w.CFDs, w.CINDs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if full.Total() < 3 {
		t.Fatalf("workload too clean for the limit test: %d violations", full.Total())
	}
	for _, limit := range []int{1, 2, full.Total() - 1, full.Total(), full.Total() + 10} {
		got, err := b.Detect(context.Background(), db, w.CFDs, w.CINDs, limit)
		if err != nil {
			t.Fatal(err)
		}
		assertSameReport(t, got, full.Truncate(limit))
	}
}

// nullDB builds a fixture where the engine's empty-string value (SQL
// NULL) drives every violation: a group whose Y values are {v, ""}, a
// tuple whose Y is "" failing a constant, and a CIND whose match exists
// only via NULL = NULL.
func nullFixture(t *testing.T) (*schema.Schema, *instance.Database, []*cfd.CFD, []*cind.CIND) {
	t.Helper()
	str := func(n string) schema.Attribute {
		return schema.Attribute{Name: n, Dom: schema.Infinite("string")}
	}
	sch := schema.MustNew(
		schema.MustRelation("r", str("x"), str("y")),
		schema.MustRelation("s", str("a")),
	)
	db := instance.NewDatabase(sch)
	for _, row := range [][]string{
		{"g1", "v"}, {"g1", ""}, // wildcard-RHS pair violation via NULL
		{"g2", ""},             // constant-RHS single violation via NULL
		{"", "v"},              // NULL X-group; also CIND LHS matched via NULL
		{"k", "v"},             // CIND LHS with no RHS match
	} {
		db.Instance("r").InsertConsts(row...)
	}
	db.Instance("s").InsertConsts("")
	cfds := []*cfd.CFD{
		cfd.MustNew(sch, "wild", "r", []string{"x"}, []string{"y"},
			[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}}),
		cfd.MustNew(sch, "const", "r", []string{"x"}, []string{"y"},
			[]cfd.Row{{LHS: pattern.Tup(pattern.Sym("g2")), RHS: pattern.Tup(pattern.Sym("v"))}}),
	}
	cinds := []*cind.CIND{
		cind.MustNew(sch, "incl", "r", []string{"x"}, nil, "s", []string{"a"}, nil,
			[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}}),
	}
	return sch, db, cfds, cinds
}

func TestDifferentialNullValues(t *testing.T) {
	_, db, cfds, cinds := nullFixture(t)
	got, want := detectBoth(t, newBackend(t), db, cfds, cinds)
	assertSameReport(t, got, want)
	// The fixture is built so NULL semantics decide each constraint: the
	// wild CFD catches the {v, ""} group, the const CFD the "" value, and
	// the CIND excuses exactly the "" tuple ("" matches the NULL s-tuple)
	// while reporting the non-empty LHS values.
	if len(want.CFD) != 2 || len(want.CIND) != 4 {
		t.Fatalf("fixture lost its NULL-driven violations: %v", want)
	}
	for _, v := range want.CIND {
		if v.T[0].Str() == "" {
			t.Fatalf("the NULL LHS tuple %v was reported despite its NULL match", v.T)
		}
	}
}

// TestDifferentialQuoting runs the backend over identifiers embedding
// double quotes and values embedding single quotes, end to end.
func TestDifferentialQuoting(t *testing.T) {
	str := func(n string) schema.Attribute {
		return schema.Attribute{Name: n, Dom: schema.Infinite("string")}
	}
	sch := schema.MustNew(
		schema.MustRelation(`we"ird`, str(`co"l`), str("v")),
		schema.MustRelation(`o'ther`, str("a")),
	)
	db := instance.NewDatabase(sch)
	db.Instance(`we"ird`).InsertConsts("O'Hare", "x")
	db.Instance(`we"ird`).InsertConsts("O'Hare", "y")
	db.Instance(`o'ther`).InsertConsts(`quo"te`)
	cfds := []*cfd.CFD{cfd.MustNew(sch, "q", `we"ird`, []string{`co"l`}, []string{"v"},
		[]cfd.Row{{LHS: pattern.Tup(pattern.Sym("O'Hare")), RHS: pattern.Wilds(1)}})}
	cinds := []*cind.CIND{cind.MustNew(sch, "i", `we"ird`, []string{`co"l`}, nil,
		`o'ther`, []string{"a"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})}
	got, want := detectBoth(t, newBackend(t), db, cfds, cinds)
	assertSameReport(t, got, want)
	if len(want.CFD) != 1 || len(want.CIND) != 2 {
		t.Fatalf("quoting fixture found %d/%d violations, want 1 CFD pair and 2 CIND", len(want.CFD), len(want.CIND))
	}
}

// TestResyncAfterMutation: a second Detect after Insert/Delete must see
// the new contents (Version-driven re-ingest), and an unchanged database
// must not be re-ingested (same report, trivially — asserted via the
// differential check again).
func TestResyncAfterMutation(t *testing.T) {
	sch := bank.Schema()
	db := bank.Data(sch)
	cfds, cinds := bank.CFDs(sch), bank.CINDs(sch)
	b := newBackend(t)
	got, want := detectBoth(t, b, db, cfds, cinds)
	assertSameReport(t, got, want)

	// Unchanged: served off the existing mirror.
	got2, err := b.Detect(context.Background(), db, cfds, cinds, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertSameReport(t, got2, want)

	// Mutate: clear the interest relation, stranding every CIND demand on
	// it, then re-detect differentially.
	interest := db.Instance("interest")
	for interest.Len() > 0 {
		interest.Delete(interest.Tuples()[0])
	}
	got3, want3 := detectBoth(t, b, db, cfds, cinds)
	assertSameReport(t, got3, want3)
	if want3.Total() <= want.Total() {
		t.Fatalf("clearing interest should add violations: %d -> %d", want.Total(), want3.Total())
	}
}

func TestContextCancellation(t *testing.T) {
	sch := bank.Schema()
	db := bank.Data(sch)
	b := newBackend(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := b.Detect(ctx, db, bank.CFDs(sch), bank.CINDs(sch), 0); err == nil {
		t.Fatal("cancelled Detect succeeded")
	}
}

func TestGroundDataRequired(t *testing.T) {
	str := schema.Attribute{Name: "a", Dom: schema.Infinite("string")}
	sch := schema.MustNew(schema.MustRelation("r", str))
	db := instance.NewDatabase(sch)
	db.Instance("r").Insert(instance.Tuple{types.NewVar(1, "x")})
	b := newBackend(t)
	_, err := b.Detect(context.Background(), db, nil, nil, 0)
	if err == nil || !strings.Contains(err.Error(), "ground") {
		t.Fatalf("variable data error = %v, want ground-data rejection", err)
	}
}

func TestReservedColumnRejected(t *testing.T) {
	attr := schema.Attribute{Name: SeqColumn, Dom: schema.Infinite("string")}
	sch := schema.MustNew(schema.MustRelation("r", attr))
	db := instance.NewDatabase(sch)
	b := newBackend(t)
	if _, err := b.Detect(context.Background(), db, nil, nil, 0); err == nil {
		t.Fatal("reserved column accepted")
	}
}

func TestOpen(t *testing.T) {
	for _, spec := range []string{"", "mem", "nosuchdriver:x"} {
		if db, err := Open(spec); err == nil {
			db.Close()
			t.Errorf("Open(%q) succeeded", spec)
		}
	}
	if _, err := Open("nosuchdriver:x"); err == nil || !strings.Contains(err.Error(), memdb.DriverName) {
		t.Errorf("unknown-driver error should list registered drivers, got %v", err)
	}
	// Two empty-DSN opens of the embedded engine are isolated.
	db1, err := Open("mem:")
	if err != nil {
		t.Fatal(err)
	}
	defer db1.Close()
	db2, err := Open("mem:")
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, err := db1.Exec(`CREATE TABLE "t" ("a" TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db2.Exec(`CREATE TABLE "t" ("a" TEXT)`); err != nil {
		t.Fatalf("empty-DSN opens share state: %v", err)
	}
	// Named DSNs are shared.
	db3, err := Open("mem:shared-open-test")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { db3.Close(); memdb.Purge("shared-open-test") }()
	db4, err := Open("mem:shared-open-test")
	if err != nil {
		t.Fatal(err)
	}
	defer db4.Close()
	if _, err := db3.Exec(`CREATE TABLE "t" ("a" TEXT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db4.Exec(`CREATE TABLE "t" ("a" TEXT)`); err == nil {
		t.Fatal("named DSN opens are unexpectedly isolated")
	}
}

// TestStaleMirrorDetected: a mirror row whose seq falls outside the source
// instance is corruption (something wrote to the backend database behind
// the Backend's back); both reconstruction paths refuse it instead of
// indexing out of range or reporting a tuple that does not exist.
func TestStaleMirrorDetected(t *testing.T) {
	str := func(n string) schema.Attribute {
		return schema.Attribute{Name: n, Dom: schema.Infinite("string")}
	}
	sch := schema.MustNew(
		schema.MustRelation("r", str("x"), str("y")),
		schema.MustRelation("s", str("a")),
	)
	db := instance.NewDatabase(sch)
	db.Instance("r").InsertConsts("g", "v")
	db.Instance("r").InsertConsts("g", "w")
	cfds := []*cfd.CFD{cfd.MustNew(sch, "c", "r", []string{"x"}, []string{"y"},
		[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})}
	cinds := []*cind.CIND{cind.MustNew(sch, "i", "r", []string{"x"}, nil,
		"s", []string{"a"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})}
	b := newBackend(t)
	if _, err := b.Detect(context.Background(), db, cfds, cinds, 0); err != nil {
		t.Fatal(err)
	}
	// Corrupt the mirror directly: an extra violating row with a seq the
	// instance does not have. The instance is unchanged, so no Version
	// bump triggers the re-ingest that would repair it.
	if _, err := b.DB().Exec(`INSERT INTO "r" VALUES (?, ?, ?)`, "g", "zzz", 999); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Detect(context.Background(), db, cfds, nil, 0); err == nil || !strings.Contains(err.Error(), "stale mirror") {
		t.Fatalf("CFD path accepted the stale mirror: %v", err)
	}
	if _, err := b.Detect(context.Background(), db, nil, cinds, 0); err == nil || !strings.Contains(err.Error(), "stale mirror") {
		t.Fatalf("CIND path accepted the stale mirror: %v", err)
	}
}

// TestMultiRowMultiYCFD covers the component-union reconstruction: a CFD
// with several pattern rows and a composite RHS, where different
// components flag different groups.
func TestMultiRowMultiYCFD(t *testing.T) {
	str := func(n string) schema.Attribute {
		return schema.Attribute{Name: n, Dom: schema.Infinite("string")}
	}
	sch := schema.MustNew(schema.MustRelation("r", str("x"), str("y1"), str("y2")))
	db := instance.NewDatabase(sch)
	for _, row := range [][]string{
		{"a", "p", "q"}, {"a", "p", "r"}, // y2 differs: wild component fires
		{"b", "p", "q"}, {"b", "p", "q"}, // duplicate collapses: clean
		{"c", "z", "q"},                  // fails the const row below
		{"d", "p", "q"},
	} {
		db.Instance("r").InsertConsts(row...)
	}
	cfds := []*cfd.CFD{cfd.MustNew(sch, "multi", "r", []string{"x"}, []string{"y1", "y2"},
		[]cfd.Row{
			{LHS: pattern.Wilds(1), RHS: pattern.Wilds(2)},
			{LHS: pattern.Tup(pattern.Sym("c")), RHS: pattern.Tup(pattern.Sym("p"), pattern.Wild)},
		})}
	got, want := detectBoth(t, newBackend(t), db, cfds, nil)
	assertSameReport(t, got, want)
	if len(want.CFD) == 0 {
		t.Fatal("multi-row fixture found no violations")
	}
}

// TestEmptyXCFD covers the degenerate implicit-group path on both RHS
// kinds.
func TestEmptyXCFD(t *testing.T) {
	str := func(n string) schema.Attribute {
		return schema.Attribute{Name: n, Dom: schema.Infinite("string")}
	}
	sch := schema.MustNew(schema.MustRelation("r", str("y")))
	db := instance.NewDatabase(sch)
	db.Instance("r").InsertConsts("v")
	db.Instance("r").InsertConsts("w")
	cfds := []*cfd.CFD{
		cfd.MustNew(sch, "allequal", "r", nil, []string{"y"},
			[]cfd.Row{{LHS: pattern.Tup(), RHS: pattern.Wilds(1)}}),
		cfd.MustNew(sch, "allv", "r", nil, []string{"y"},
			[]cfd.Row{{LHS: pattern.Tup(), RHS: pattern.Tup(pattern.Sym("v"))}}),
	}
	got, want := detectBoth(t, newBackend(t), db, cfds, nil)
	assertSameReport(t, got, want)
	if len(want.CFD) == 0 {
		t.Fatal("empty-X fixture found no violations")
	}
}
