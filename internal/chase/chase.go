// Package chase implements the extended chase of Section 5.1: the
// IND(ψ) and FD(φ) chase operations over database templates with variables,
// chasing sequences, and the bounded instantiated chase chaseI used by the
// consistency-checking algorithms of Section 5.2.
//
// The chase draws unknown values from per-attribute variable pools var[A]
// of maximum size N; because the value universe is then finite, chasing
// always terminates (the paper's termination argument). Setting N = 0
// switches to unbounded fresh variables — the classical chase — which is
// what the implication analysis uses, guarded by a step limit.
package chase

import (
	"context"
	"fmt"
	"math/rand"

	"cind/internal/cfd"
	"cind/internal/conc"
	cind "cind/internal/core"
	"cind/internal/instance"
	"cind/internal/pattern"
	"cind/internal/schema"
	"cind/internal/types"
)

// Result classifies the outcome of a chase run.
type Result int

const (
	// Fixpoint: every chase operation is a no-op; chase(D, Σ) is defined
	// and the final template satisfies Σ (with variables read as distinct
	// unknowns).
	Fixpoint Result = iota
	// Undefined: an FD(φ) operation hit a constant conflict — chase(D, Σ)
	// is undefined in the paper's sense.
	Undefined
	// CapExceeded: a relation outgrew the table cap T; the paper's chaseI
	// declares the chase undefined in this case too, but callers may want
	// to distinguish it, so it is reported separately.
	CapExceeded
	// StepLimit: the safety cap on operations was reached (only possible
	// with unbounded variables); the run is inconclusive.
	StepLimit
	// Cancelled: RunContext observed a cancelled context and stopped; the
	// run is inconclusive and the template is mid-chase.
	Cancelled
)

func (r Result) String() string {
	switch r {
	case Fixpoint:
		return "fixpoint"
	case Undefined:
		return "undefined"
	case CapExceeded:
		return "cap-exceeded"
	case StepLimit:
		return "step-limit"
	case Cancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("Result(%d)", int(r))
	}
}

// Config tunes a chase run. The zero Config gives the paper's defaults:
// N = 2 (Section 6 fixes N = 2 after finding larger N has negligible
// impact), T = 2000, deterministic order, fresh-variable instantiation of
// finite-domain attributes disabled.
type Config struct {
	// N is the var[A] pool size; 0 means unbounded fresh variables.
	N int
	// TableCap is T, the maximum tuples per relation (0 = 2000).
	TableCap int
	// MaxSteps caps applied operations (0 = 100000).
	MaxSteps int
	// Rng, when non-nil, randomises the order in which constraints and
	// tuples are chased — the behaviour of RandomChecking. Nil keeps the
	// deterministic textual order, which tests rely on.
	Rng *rand.Rand
	// InstantiateFinite enables the chaseI modification (a) of Section 5.2:
	// finite-domain attributes must not survive as variables. Following the
	// "Improvement" paragraph, new tuples still receive variables so the
	// CFD chase can bind them consistently; whenever a fixpoint is reached
	// with finite-domain variables left, Run valuates them — preferring
	// inert values that match no pattern constant — and resumes chasing,
	// until a fixpoint with no finite-domain variables remains.
	InstantiateFinite bool
}

func (c Config) withDefaults() Config {
	if c.TableCap == 0 {
		c.TableCap = 2000
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = 100000
	}
	return c
}

// Chaser runs chase sequences for a fixed Σ of CFDs and CINDs over one
// database template. Not safe for concurrent use.
type Chaser struct {
	sch   *schema.Schema
	cfds  []*cfd.CFD
	cinds []*cind.CIND
	cfg   Config

	db     *instance.Database
	gen    types.VarGen
	pools  map[string]*types.Pool   // rel "." attr -> pool
	varDom map[int64]*schema.Domain // variable id -> its attribute domain
	// sigmaConsts holds every constant appearing in Σ; valuation prefers
	// finite-domain values outside this set, which cannot trigger any
	// pattern.
	sigmaConsts map[string]bool
	steps       int
	reused      bool
	// stop is the cancellation poll of the active RunContext; nil outside
	// a run (and for plain Run, which cannot be cancelled).
	stop func() bool
}

// New builds a chaser. Constraints are normalised internally; the template
// starts empty (seed it with SeedFreshTuple or InsertTuple).
func New(sch *schema.Schema, cfds []*cfd.CFD, cinds []*cind.CIND, cfg Config) *Chaser {
	consts := map[string]bool{}
	for _, c := range cfds {
		for _, v := range c.Constants() {
			consts[v] = true
		}
	}
	for _, c := range cinds {
		for _, v := range c.Constants() {
			consts[v] = true
		}
	}
	return &Chaser{
		sch:         sch,
		cfds:        cfd.NormalizeAll(cfds),
		cinds:       cind.NormalizeAll(cinds),
		cfg:         cfg.withDefaults(),
		db:          instance.NewDatabase(sch),
		pools:       map[string]*types.Pool{},
		varDom:      map[int64]*schema.Domain{},
		sigmaConsts: consts,
	}
}

// DB exposes the current template. Callers must not mutate it directly.
func (c *Chaser) DB() *instance.Database { return c.db }

// Steps returns the number of chase operations applied so far.
func (c *Chaser) Steps() int { return c.steps }

// Exact reports whether the run so far is a faithful prefix of the
// unbounded chase: no variable pool wrapped around. A Fixpoint result with
// Exact() true is a genuine fixpoint of the classical chase.
func (c *Chaser) Exact() bool { return !c.reused }

// VarDomain returns the domain of the attribute a variable was created
// for, or nil for unknown variables.
func (c *Chaser) VarDomain(id int64) *schema.Domain { return c.varDom[id] }

// FiniteVars returns the variables currently in the template whose
// attribute domains are finite — the set V of Section 5.2 that valuations
// range over.
func (c *Chaser) FiniteVars() []types.Value {
	var out []types.Value
	for _, v := range c.db.Vars() {
		if d := c.varDom[v.VarID()]; d != nil && d.IsFinite() {
			out = append(out, v)
		}
	}
	return out
}

// freshVar allocates a variable for rel.attr, from the pool when N > 0.
func (c *Chaser) freshVar(rel, attr string, dom *schema.Domain) types.Value {
	if c.cfg.N <= 0 {
		v := c.gen.Fresh(attr)
		c.varDom[v.VarID()] = dom
		return v
	}
	key := rel + "." + attr
	p := c.pools[key]
	if p == nil {
		p = types.NewPool(&c.gen, attr, c.cfg.N)
		c.pools[key] = p
	}
	v := p.Next()
	if p.Reused() {
		c.reused = true
	}
	c.varDom[v.VarID()] = dom
	return v
}

// SeedFreshTuple inserts a tuple of fresh variables into rel — step 1 of
// RandomChecking — and returns it.
func (c *Chaser) SeedFreshTuple(rel string) instance.Tuple {
	r := c.sch.MustRelationByName(rel)
	t := make(instance.Tuple, r.Arity())
	for i, a := range r.Attrs() {
		t[i] = c.freshVar(rel, a.Name, a.Dom)
	}
	c.db.Insert(rel, t)
	return t
}

// InsertTuple inserts a caller-built tuple (e.g. the frozen LHS tuple of an
// implication check).
func (c *Chaser) InsertTuple(rel string, t instance.Tuple) {
	c.db.Insert(rel, t)
}

// SubstituteVar applies a valuation entry ρ(v) = val to the template.
func (c *Chaser) SubstituteVar(id int64, val types.Value) {
	c.db.SubstituteVar(id, val)
}

// Run chases to fixpoint or failure: it alternates FD(φ) passes (to their
// own fixpoint) with single IND(ψ) applications, which matches the
// "Improvement" of Section 5.2 — every tuple insertion is followed by a
// full CFD chase before the next CIND fires. Under InstantiateFinite, a
// fixpoint with finite-domain variables left triggers a valuation round
// followed by more chasing, until no finite-domain variable survives.
func (c *Chaser) Run() Result {
	return c.RunContext(context.Background())
}

// RunContext is Run with cooperative cancellation: every chase operation —
// each FD pass over a constraint and each IND application — polls ctx, so
// a cancelled run stops within one operation of the observation and
// returns Cancelled. A Background (non-cancellable) context costs a single
// nil check per poll.
func (c *Chaser) RunContext(ctx context.Context) Result {
	c.stop = conc.StopFunc(ctx)
	defer func() { c.stop = nil }()
	for {
		if c.stop() {
			return Cancelled
		}
		res := c.runCore()
		if res != Fixpoint || !c.cfg.InstantiateFinite {
			return res
		}
		fv := c.FiniteVars()
		if len(fv) == 0 {
			return Fixpoint
		}
		for _, v := range fv {
			c.db.SubstituteVar(v.VarID(), types.C(c.finiteValue(v)))
		}
		if c.steps >= c.cfg.MaxSteps {
			return StepLimit
		}
	}
}

// finiteValue picks a valuation for one finite-domain variable: an inert
// domain value outside the constants of Σ when one exists (it can trigger
// no pattern), else a random or first domain value.
func (c *Chaser) finiteValue(v types.Value) string {
	dom := c.varDom[v.VarID()]
	if inert, ok := dom.Fresh(c.sigmaConsts); ok {
		return inert
	}
	vals := dom.Values()
	if c.cfg.Rng != nil {
		return vals[c.cfg.Rng.Intn(len(vals))]
	}
	return vals[0]
}

// runCore chases FD/IND operations to a variable-level fixpoint.
func (c *Chaser) runCore() Result {
	for {
		if c.stop() {
			return Cancelled
		}
		if res, ok := c.fdFixpoint(); !ok {
			return res
		}
		applied, res := c.applyOneIND()
		if res != Fixpoint {
			return res
		}
		if !applied {
			return Fixpoint
		}
		if c.steps >= c.cfg.MaxSteps {
			return StepLimit
		}
	}
}

// fdFixpoint applies FD operations until none changes the template.
// Returns (Undefined, false) on conflict.
func (c *Chaser) fdFixpoint() (Result, bool) {
	for changed := true; changed; {
		changed = false
		for _, phi := range c.order(len(c.cfds)) {
			if c.stop() {
				return Cancelled, false
			}
			res, did := c.applyFD(c.cfds[phi])
			if res != Fixpoint {
				return res, false
			}
			if did {
				changed = true
				c.steps++
				if c.steps >= c.cfg.MaxSteps {
					return StepLimit, false
				}
			}
		}
	}
	return Fixpoint, true
}

// order returns 0..n-1, shuffled when an rng is configured.
func (c *Chaser) order(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	if c.cfg.Rng != nil {
		c.cfg.Rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	}
	return idx
}

// applyFD applies one FD(φ) pass: tuples matching the LHS pattern are
// grouped by their X projection (hash join rather than the quadratic
// nested loop), and within each group the A column is equated per the two
// cases of Section 5.1. All forced substitutions of a pass are applied
// together; the fixpoint loop in fdFixpoint re-checks afterwards, so batch
// application is equivalent to single steps (chase confluence) but far
// cheaper on the large templates of the Section 6 experiments. Returns
// whether a change was made.
func (c *Chaser) applyFD(phi *cfd.CFD) (Result, bool) {
	in := c.db.Instance(phi.Rel)
	rel := in.Relation()
	xi := make([]int, len(phi.X))
	for i, a := range phi.X {
		j, _ := rel.Index(a)
		xi[i] = j
	}
	ai, _ := rel.Index(phi.Y[0])
	row := phi.Rows[0]
	tpA := row.RHS[0]

	// Group the A values of LHS-matching tuples by X projection.
	groups := map[string][]types.Value{}
	var order []string
	for _, t := range in.Tuples() {
		x := t.Project(xi)
		if !row.LHS.Matches(x) {
			continue
		}
		k := projKey(x)
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], t[ai])
	}

	type sub struct {
		id  int64
		val types.Value
	}
	var subs []sub
	for _, k := range order {
		if c.stop() {
			return Cancelled, false
		}
		vals := groups[k]
		// Determine the group's target value: the constant tp[A] in case
		// (ii); in case (i) the largest value present (constants dominate
		// variables, larger variables dominate smaller ones).
		var target types.Value
		haveTarget := false
		if tpA.IsConst() {
			target = types.C(tpA.Const())
			haveTarget = true
		}
		for _, v := range vals {
			if v.IsConst() {
				if haveTarget && target.IsConst() && !v.Eq(target) {
					return Undefined, false // two distinct constants forced
				}
				if !haveTarget || !target.IsConst() {
					target = v
					haveTarget = true
				}
			} else if !haveTarget || v.IsVar() && target.IsVar() && target.Less(v) {
				target = v
				haveTarget = true
			}
		}
		for _, v := range vals {
			if v.IsVar() && !v.Eq(target) {
				subs = append(subs, sub{v.VarID(), target})
			}
		}
	}
	if len(subs) == 0 {
		return Fixpoint, false
	}
	changed := false
	for _, s := range subs {
		if c.db.SubstituteVar(s.id, s.val) {
			changed = true
		}
	}
	return Fixpoint, changed
}

// projKey encodes a projection for hashing, keeping constants and
// variables in disjoint namespaces.
func projKey(vals []types.Value) string {
	var b []byte
	for _, v := range vals {
		if v.IsVar() {
			b = append(b, 1)
			b = appendInt(b, v.VarID())
		} else {
			b = append(b, 2)
			b = append(b, v.Str()...)
		}
		b = append(b, 0)
	}
	return string(b)
}

func appendInt(b []byte, n int64) []byte {
	for i := 0; i < 8; i++ {
		b = append(b, byte(n>>(8*i)))
	}
	return b
}

// applyOneIND finds one triggered, unsatisfied CIND and adds the required
// tuple. Returns whether an op was applied.
func (c *Chaser) applyOneIND() (bool, Result) {
	for _, pi := range c.order(len(c.cinds)) {
		if c.stop() {
			return false, Cancelled
		}
		psi := c.cinds[pi]
		ta, ok := c.findTrigger(psi)
		if !ok {
			continue
		}
		res := c.addINDTuple(psi, ta)
		c.steps++
		return true, res
	}
	return false, Fixpoint
}

// findTrigger returns a tuple of the LHS relation that matches psi's Xp
// pattern exactly (constants equal) and has no matching RHS tuple. The RHS
// side is indexed by Y projection (hash anti-join) so each call is linear
// in the two instance sizes.
func (c *Chaser) findTrigger(psi *cind.CIND) (instance.Tuple, bool) {
	i1 := c.db.Instance(psi.LHSRel)
	i2 := c.db.Instance(psi.RHSRel)
	r1, r2 := i1.Relation(), i2.Relation()
	xpIdx := idxOf(r1, psi.Xp)
	xIdx := idxOf(r1, psi.X)
	yIdx := idxOf(r2, psi.Y)
	ypIdx := idxOf(r2, psi.Yp)
	xpPat := psi.XpPattern()
	ypPat := psi.YpPattern()

	rhsKeys := map[string]bool{}
	for _, tb := range i2.Tuples() {
		if !constsMatch(tb.Project(ypIdx), ypPat) {
			continue
		}
		rhsKeys[projKey(tb.Project(yIdx))] = true
	}

	tuples := i1.Tuples()
	for _, k := range c.order(len(tuples)) {
		ta := tuples[k]
		// Exact equality with the Xp constants (variables do not trigger).
		if !constsMatch(ta.Project(xpIdx), xpPat) {
			continue
		}
		if rhsKeys[projKey(ta.Project(xIdx))] {
			continue
		}
		return ta, true
	}
	return nil, false
}

// addINDTuple performs IND(ψ) for the triggering tuple ta: insert tb with
// tb[Y] = ta[X], tb[Yp] = tp[Yp], and pool variables (or finite-domain
// constants under chaseI) elsewhere.
func (c *Chaser) addINDTuple(psi *cind.CIND, ta instance.Tuple) Result {
	i1 := c.db.Instance(psi.LHSRel)
	i2 := c.db.Instance(psi.RHSRel)
	r1, r2 := i1.Relation(), i2.Relation()
	xIdx := idxOf(r1, psi.X)
	want := ta.Project(xIdx)

	tb := make(instance.Tuple, r2.Arity())
	filled := make([]bool, r2.Arity())
	for i, a := range psi.Y {
		j, _ := r2.Index(a)
		tb[j] = want[i]
		filled[j] = true
	}
	ypPat := psi.YpPattern()
	for i, a := range psi.Yp {
		j, _ := r2.Index(a)
		tb[j] = types.C(ypPat[i].Const())
		filled[j] = true
	}
	for j, a := range r2.Attrs() {
		if filled[j] {
			continue
		}
		tb[j] = c.freshVar(psi.RHSRel, a.Name, a.Dom)
	}
	i2.Insert(tb)
	if i2.Len() > c.cfg.TableCap {
		return CapExceeded
	}
	return Fixpoint
}

// constsMatch reports exact equality between tuple fields and pattern
// constants: every pattern symbol is a constant (normal form) and must
// equal the corresponding field, which must itself be a constant.
func constsMatch(vals []types.Value, pat pattern.Tuple) bool {
	for i, s := range pat {
		if !vals[i].IsConst() || vals[i].Str() != s.Const() {
			return false
		}
	}
	return true
}

func idxOf(r *schema.Relation, attrs []string) []int {
	out := make([]int, len(attrs))
	for i, a := range attrs {
		j, ok := r.Index(a)
		if !ok {
			panic("chase: relation " + r.Name() + " lost attribute " + a)
		}
		out[i] = j
	}
	return out
}
