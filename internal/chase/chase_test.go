package chase

import (
	"context"
	"testing"
	"time"

	"cind/internal/cfd"
	cind "cind/internal/core"
	"cind/internal/instance"
	"cind/internal/pattern"
	"cind/internal/schema"
	"cind/internal/types"
)

var w = pattern.Wild

func sym(v string) pattern.Symbol { return pattern.Sym(v) }

// example51Schema builds R = (R1, R2) with attr(R1) = {E, F},
// attr(R2) = {G, H} over infinite domains (Example 5.1); finiteH switches
// dom(H) to {0, 1} (Examples 5.2/5.3).
func example51Schema(finiteH bool) *schema.Schema {
	d := schema.Infinite("string")
	var hDom *schema.Domain = d
	if finiteH {
		hDom = schema.Finite("H", "0", "1")
	}
	return schema.MustNew(
		schema.MustRelation("R1",
			schema.Attribute{Name: "E", Dom: d}, schema.Attribute{Name: "F", Dom: d}),
		schema.MustRelation("R2",
			schema.Attribute{Name: "G", Dom: d}, schema.Attribute{Name: "H", Dom: hDom}),
	)
}

// example51Constraints builds Σ = {φ1, φ2, ψ1, ψ2, ψ3} of Example 5.1.
func example51Constraints(sch *schema.Schema) ([]*cfd.CFD, []*cind.CIND) {
	phi1 := cfd.MustNew(sch, "phi1", "R1", []string{"E"}, []string{"F"},
		[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	phi2 := cfd.MustNew(sch, "phi2", "R2", []string{"H"}, []string{"G"},
		[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Tup(sym("c"))}})
	psi1 := cind.MustNew(sch, "psi1", "R1", []string{"E"}, nil, "R2", []string{"G"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	psi2 := cind.MustNew(sch, "psi2", "R2", nil, []string{"H"}, "R1", nil, []string{"F"},
		[]cind.Row{{LHS: pattern.Tup(sym("0")), RHS: pattern.Tup(sym("a"))}})
	psi3 := cind.MustNew(sch, "psi3", "R2", nil, []string{"H"}, "R1", nil, []string{"F"},
		[]cind.Row{{LHS: pattern.Tup(sym("1")), RHS: pattern.Tup(sym("b"))}})
	return []*cfd.CFD{phi1, phi2}, []*cind.CIND{psi1, psi2, psi3}
}

// TestExample51 replays the chase of Example 5.1: seeding R1 with a fresh
// tuple, the chase reaches the fixpoint R1 = {(c, vF)}, R2 = {(c, vH)}.
func TestExample51(t *testing.T) {
	sch := example51Schema(false)
	cfds, cinds := example51Constraints(sch)
	ch := New(sch, cfds, cinds, Config{N: 2})
	ch.SeedFreshTuple("R1")

	if res := ch.Run(); res != Fixpoint {
		t.Fatalf("chase result = %v, want fixpoint", res)
	}
	db := ch.DB()
	r1 := db.Instance("R1").Tuples()
	r2 := db.Instance("R2").Tuples()
	if len(r1) != 1 || len(r2) != 1 {
		t.Fatalf("sizes: R1=%d R2=%d, want 1 and 1\n%v", len(r1), len(r2), db)
	}
	if !r1[0][0].Eq(types.C("c")) {
		t.Errorf("R1.E = %v, want c (forced by φ2 through ψ1)", r1[0][0])
	}
	if !r1[0][1].IsVar() {
		t.Errorf("R1.F = %v, want variable", r1[0][1])
	}
	if !r2[0][0].Eq(types.C("c")) {
		t.Errorf("R2.G = %v, want c", r2[0][0])
	}
	if !r2[0][1].IsVar() {
		t.Errorf("R2.H = %v, want variable (infinite domain)", r2[0][1])
	}
	// The resulting template satisfies Σ once grounded with fresh values
	// (the valuation argument at the end of Example 5.1).
	ground, ok := db.Ground(ch.VarDomain, map[string]bool{"c": true, "a": true, "b": true, "0": true, "1": true})
	if !ok {
		t.Fatal("grounding must succeed over infinite domains")
	}
	for _, phi := range cfds {
		if !phi.Satisfied(ground) {
			t.Errorf("%s violated on grounded fixpoint", phi.ID)
		}
	}
	for _, psi := range cinds {
		if !psi.Satisfied(ground) {
			t.Errorf("%s violated on grounded fixpoint", psi.ID)
		}
	}
}

// TestExample53 replays the instantiated chase of Example 5.3: dom(H) =
// {0, 1}, seed R2 with (vG, vH), apply the valuation ρ1(vH) = 0, and chase
// to the paper's D4 = R1{(c, a)}, R2{(c, 0)}.
func TestExample53(t *testing.T) {
	sch := example51Schema(true)
	cfds, cinds := example51Constraints(sch)
	ch := New(sch, cfds, cinds, Config{N: 2, InstantiateFinite: true})
	seed := ch.SeedFreshTuple("R2")
	vH := seed[1]
	if !vH.IsVar() {
		t.Fatal("seed H field must be a variable")
	}
	// ρ1: vH ↦ 0.
	ch.SubstituteVar(vH.VarID(), types.C("0"))

	if res := ch.Run(); res != Fixpoint {
		t.Fatalf("chaseI result = %v, want fixpoint (defined)", res)
	}
	db := ch.DB()
	r1 := db.Instance("R1").Tuples()
	r2 := db.Instance("R2").Tuples()
	if len(r1) != 1 || len(r2) != 1 {
		t.Fatalf("sizes: R1=%d R2=%d, want 1 and 1 (paper's D4)\n%v", len(r1), len(r2), db)
	}
	if !r1[0].Eq(instance.Consts("c", "a")) {
		t.Errorf("R1 = %v, want (c, a)", r1[0])
	}
	if !r2[0].Eq(instance.Consts("c", "0")) {
		t.Errorf("R2 = %v, want (c, 0)", r2[0])
	}
	// D4 is ground and satisfies Σ outright.
	for _, phi := range cfds {
		if !phi.Satisfied(db) {
			t.Errorf("%s violated on D4", phi.ID)
		}
	}
	for _, psi := range cinds {
		if !psi.Satisfied(db) {
			t.Errorf("%s violated on D4", psi.ID)
		}
	}
}

// TestExample52Undefined extends Σ with ψ4 = (R1[nil; F] ⊆ R2[nil; G],
// (a||d)) as in Example 5.2: after ψ2 fires (F = a), ψ4 inserts a tuple
// with G = d, and φ2 (G must be c) makes the chase undefined.
func TestExample52Undefined(t *testing.T) {
	sch := example51Schema(true)
	cfds, cinds := example51Constraints(sch)
	psi4 := cind.MustNew(sch, "psi4", "R1", nil, []string{"F"}, "R2", nil, []string{"G"},
		[]cind.Row{{LHS: pattern.Tup(sym("a")), RHS: pattern.Tup(sym("d"))}})
	cinds = append(cinds, psi4)

	ch := New(sch, cfds, cinds, Config{N: 2, InstantiateFinite: true})
	seed := ch.SeedFreshTuple("R2")
	ch.SubstituteVar(seed[1].VarID(), types.C("0"))

	if res := ch.Run(); res != Undefined {
		t.Fatalf("chase result = %v, want undefined (c vs d conflict)\n%v", res, ch.DB())
	}
}

// TestFDConstantConflictSingleTuple: a single tuple with a constant RHS
// violating a constant pattern makes FD(φ) undefined immediately.
func TestFDConstantConflictSingleTuple(t *testing.T) {
	sch := example51Schema(false)
	phi := cfd.MustNew(sch, "phi", "R1", []string{"E"}, []string{"F"},
		[]cfd.Row{{LHS: pattern.Tup(sym("e")), RHS: pattern.Tup(sym("f"))}})
	ch := New(sch, []*cfd.CFD{phi}, nil, Config{N: 2})
	ch.InsertTuple("R1", instance.Consts("e", "wrong"))
	if res := ch.Run(); res != Undefined {
		t.Fatalf("result = %v, want undefined", res)
	}
}

// TestFDEquatesVariablesToLarger checks case (i) of FD(φ): the smaller
// variable is replaced by the larger value, globally.
func TestFDEquatesVariablesToLarger(t *testing.T) {
	sch := example51Schema(false)
	phi := cfd.MustNew(sch, "phi", "R1", []string{"E"}, []string{"F"},
		[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	ch := New(sch, []*cfd.CFD{phi}, nil, Config{N: 4})
	v1 := types.NewVar(1001, "v1")
	v2 := types.NewVar(1002, "v2")
	ch.InsertTuple("R1", instance.Tuple{types.C("e"), v1})
	ch.InsertTuple("R1", instance.Tuple{types.C("e"), v2})
	if res := ch.Run(); res != Fixpoint {
		t.Fatalf("result = %v", res)
	}
	tuples := ch.DB().Instance("R1").Tuples()
	if len(tuples) != 1 {
		t.Fatalf("tuples must merge after equating, got %d", len(tuples))
	}
	if !tuples[0][1].Eq(v2) {
		t.Errorf("F = %v, want the larger variable v2", tuples[0][1])
	}
}

// TestCyclicINDsWithPoolsTerminate: a cyclic CIND chases to a fixpoint with
// bounded pools, and reports pool reuse so callers know the fixpoint is the
// bounded chase's, not necessarily the classical one.
func TestCyclicINDsWithPoolsTerminate(t *testing.T) {
	d := schema.Infinite("d")
	sch := schema.MustNew(schema.MustRelation("R",
		schema.Attribute{Name: "A", Dom: d}, schema.Attribute{Name: "B", Dom: d}))
	psi := cind.MustNew(sch, "cyc", "R", []string{"A"}, nil, "R", []string{"B"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	ch := New(sch, nil, []*cind.CIND{psi}, Config{N: 2, TableCap: 100})
	ch.SeedFreshTuple("R")
	res := ch.Run()
	if res != Fixpoint {
		t.Fatalf("bounded chase of a cyclic CIND must reach a fixpoint, got %v", res)
	}
	if ch.DB().Instance("R").Len() > 100 {
		t.Fatal("cap exceeded silently")
	}
}

// TestCyclicINDsUnboundedHitCap: the same cycle with fresh variables grows
// until the table cap trips.
func TestCyclicINDsUnboundedHitCap(t *testing.T) {
	d := schema.Infinite("d")
	sch := schema.MustNew(schema.MustRelation("R",
		schema.Attribute{Name: "A", Dom: d}, schema.Attribute{Name: "B", Dom: d}))
	psi := cind.MustNew(sch, "cyc", "R", []string{"A"}, nil, "R", []string{"B"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	ch := New(sch, nil, []*cind.CIND{psi}, Config{N: 0, TableCap: 50})
	ch.SeedFreshTuple("R")
	if res := ch.Run(); res != CapExceeded {
		t.Fatalf("result = %v, want cap-exceeded", res)
	}
}

// TestExactnessTracking: pool reuse flips Exact() off; fresh-variable runs
// stay exact.
func TestExactnessTracking(t *testing.T) {
	sch := example51Schema(false)
	cfds, cinds := example51Constraints(sch)
	ch := New(sch, cfds, cinds, Config{N: 0})
	ch.SeedFreshTuple("R1")
	if res := ch.Run(); res != Fixpoint {
		t.Fatalf("result = %v", res)
	}
	if !ch.Exact() {
		t.Fatal("fresh-variable run must be exact")
	}
}

// TestVariablesDoNotTriggerPatterns: a CIND whose Xp wants a constant is
// not triggered by a tuple holding a variable in that column (v ≠ a).
func TestVariablesDoNotTriggerPatterns(t *testing.T) {
	sch := example51Schema(false)
	_, cinds := example51Constraints(sch)
	// Only ψ2 (trigger H = 0), no CFDs.
	ch := New(sch, nil, cinds[1:2], Config{N: 2})
	ch.SeedFreshTuple("R2") // H is a fresh variable, not 0
	if res := ch.Run(); res != Fixpoint {
		t.Fatalf("result = %v", res)
	}
	if ch.DB().Instance("R1").Len() != 0 {
		t.Fatal("ψ2 must not fire on a variable H")
	}
}

// TestFiniteVars reports exactly the variables with finite domains.
func TestFiniteVars(t *testing.T) {
	sch := example51Schema(true)
	ch := New(sch, nil, nil, Config{N: 2})
	ch.SeedFreshTuple("R1") // E, F infinite
	ch.SeedFreshTuple("R2") // G infinite, H finite
	fv := ch.FiniteVars()
	if len(fv) != 1 {
		t.Fatalf("FiniteVars = %v, want exactly the H variable", fv)
	}
	if d := ch.VarDomain(fv[0].VarID()); d == nil || !d.IsFinite() {
		t.Fatal("VarDomain must return the finite H domain")
	}
}

// TestStepLimit guards against runaway chases.
func TestStepLimit(t *testing.T) {
	d := schema.Infinite("d")
	sch := schema.MustNew(schema.MustRelation("R",
		schema.Attribute{Name: "A", Dom: d}, schema.Attribute{Name: "B", Dom: d}))
	psi := cind.MustNew(sch, "cyc", "R", []string{"A"}, nil, "R", []string{"B"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	ch := New(sch, nil, []*cind.CIND{psi}, Config{N: 0, TableCap: 1 << 20, MaxSteps: 10})
	ch.SeedFreshTuple("R")
	if res := ch.Run(); res != StepLimit {
		t.Fatalf("result = %v, want step-limit", res)
	}
}

func TestResultString(t *testing.T) {
	for r, want := range map[Result]string{
		Fixpoint: "fixpoint", Undefined: "undefined",
		CapExceeded: "cap-exceeded", StepLimit: "step-limit", Result(9): "Result(9)",
	} {
		if r.String() != want {
			t.Errorf("String(%d) = %q", int(r), r.String())
		}
	}
}

// TestRunContextPreCancelled: an already-cancelled context stops the chase
// before its first operation.
func TestRunContextPreCancelled(t *testing.T) {
	sch := example51Schema(false)
	cfds, cinds := example51Constraints(sch)
	ch := New(sch, cfds, cinds, Config{N: 2})
	ch.SeedFreshTuple("R1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if res := ch.RunContext(ctx); res != Cancelled {
		t.Fatalf("RunContext(cancelled) = %v, want cancelled", res)
	}
}

// TestRunContextCancelMidRun cancels a long unbounded chase partway: the
// run must stop with Cancelled well before exhausting its step budget.
func TestRunContextCancelMidRun(t *testing.T) {
	d := schema.Infinite("d")
	sch := schema.MustNew(schema.MustRelation("R",
		schema.Attribute{Name: "A", Dom: d}, schema.Attribute{Name: "B", Dom: d}))
	psi := cind.MustNew(sch, "cyc", "R", []string{"A"}, nil, "R", []string{"B"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	ch := New(sch, nil, []*cind.CIND{psi}, Config{N: 0, TableCap: 1 << 30, MaxSteps: 1 << 30})
	ch.SeedFreshTuple("R")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan Result, 1)
	go func() { done <- ch.RunContext(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case res := <-done:
		if res != Cancelled {
			t.Fatalf("RunContext = %v, want cancelled", res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("chase did not observe cancellation")
	}
}
