package chase

import (
	"math/rand"
	"testing"

	"cind/internal/cfd"
	cind "cind/internal/core"
	"cind/internal/gen"
	"cind/internal/types"
)

// TestChaseOrderInsensitiveVerdict: the chase applies operations in
// whatever order its configuration dictates; classical chase confluence
// makes the *verdict* (defined vs undefined) order-independent for FD-style
// ops, and the bounded instantiated chase is observed to inherit this on
// realistic workloads. This is a fixed-seed regression check of that
// robustness (the bounded chase gives no such theorem in general: different
// orders could exhaust different budgets).
func TestChaseOrderInsensitiveVerdict(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		w := gen.New(gen.Config{
			Relations: 4, MaxAttrs: 5, F: 0.3, FinDomMax: 4,
			Card: 40, Consistent: seed%2 == 0, Seed: seed,
		})
		for _, rel := range w.Schema.Relations()[:2] {
			base := runVerdict(w, rel.Name(), nil, seed)
			for variant := int64(1); variant <= 3; variant++ {
				rng := rand.New(rand.NewSource(seed*100 + variant))
				got := runVerdict(w, rel.Name(), rng, seed)
				if got != base {
					t.Fatalf("seed %d rel %s: deterministic=%v shuffled(%d)=%v",
						seed, rel.Name(), base, variant, got)
				}
			}
		}
	}
}

// runVerdict seeds one relation with a fixed valuation and chases.
func runVerdict(w *gen.Workload, rel string, rng *rand.Rand, seed int64) Result {
	ch := New(w.Schema, w.CFDs, w.CINDs, Config{
		N: 2, TableCap: 400, Rng: rng, InstantiateFinite: true,
	})
	seedT := ch.SeedFreshTuple(rel)
	r := w.Schema.MustRelationByName(rel)
	// Fixed valuation independent of the shuffling rng.
	val := rand.New(rand.NewSource(seed))
	for i, a := range r.Attrs() {
		if a.Dom.IsFinite() && seedT[i].IsVar() {
			vals := a.Dom.Values()
			ch.SubstituteVar(seedT[i].VarID(), types.C(vals[val.Intn(len(vals))]))
		}
	}
	return ch.Run()
}

// TestFixpointTemplateSatisfiesSigma: whenever the instantiated chase
// reaches a fixpoint, the final template satisfies every constraint —
// the property Theorem 5.1 builds on.
func TestFixpointTemplateSatisfiesSigma(t *testing.T) {
	hits := 0
	for seed := int64(1); seed <= 12; seed++ {
		w := gen.New(gen.Config{
			Relations: 4, MaxAttrs: 5, F: 0.3, FinDomMax: 4,
			Card: 50, Consistent: true, Seed: seed,
		})
		for _, rel := range w.Schema.Relations() {
			if runFixpointCheck(t, w, rel.Name(), seed) {
				hits++
			}
		}
	}
	if hits == 0 {
		t.Fatal("no fixpoint was reached; property never exercised")
	}
}

func runFixpointCheck(t *testing.T, w *gen.Workload, rel string, seed int64) bool {
	t.Helper()
	ch := New(w.Schema, w.CFDs, w.CINDs, Config{N: 2, TableCap: 400, InstantiateFinite: true})
	seedT := ch.SeedFreshTuple(rel)
	r := w.Schema.MustRelationByName(rel)
	val := rand.New(rand.NewSource(seed))
	for i, a := range r.Attrs() {
		if a.Dom.IsFinite() && seedT[i].IsVar() {
			vals := a.Dom.Values()
			ch.SubstituteVar(seedT[i].VarID(), types.C(vals[val.Intn(len(vals))]))
		}
	}
	if ch.Run() != Fixpoint {
		return false
	}
	db := ch.DB()
	if !cfd.SatisfiedAll(w.CFDs, db) {
		t.Fatalf("seed %d rel %s: CFD violated at fixpoint", seed, rel)
	}
	if !cind.SatisfiedAll(w.CINDs, db) {
		t.Fatalf("seed %d rel %s: CIND violated at fixpoint", seed, rel)
	}
	return true
}
