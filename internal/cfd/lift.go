package cfd

import (
	"cind/internal/fd"
	"cind/internal/pattern"
	"cind/internal/schema"
)

// LiftFD admits a traditional FD as a CFD: the embedded FD is f itself and
// the pattern tableau is the single all-wildcard row, so the CFD constrains
// every tuple pair exactly as the FD does (Section 2: "FDs are a special
// case of CFDs"). The result satisfies IsTraditionalFD, and its violations
// are exactly the violating pairs of fd.Violations — a property the
// equivalence tests assert on the bank and generated workloads.
func LiftFD(sch *schema.Schema, id string, f fd.FD) (*CFD, error) {
	return New(sch, id, f.Rel, f.X, f.Y, []Row{{
		LHS: pattern.Wilds(len(f.X)),
		RHS: pattern.Wilds(len(f.Y)),
	}})
}
