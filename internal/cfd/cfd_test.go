package cfd

import (
	"strings"
	"testing"

	"cind/internal/instance"
	"cind/internal/pattern"
	"cind/internal/schema"
)

// interestSchema builds the paper's interest(ab, ct, at, rt) relation.
func interestSchema() *schema.Schema {
	str := schema.Infinite("string")
	at := schema.Finite("at", "saving", "checking")
	return schema.MustNew(schema.MustRelation("interest",
		schema.Attribute{Name: "ab", Dom: str},
		schema.Attribute{Name: "ct", Dom: str},
		schema.Attribute{Name: "at", Dom: at},
		schema.Attribute{Name: "rt", Dom: str},
	))
}

// phi3 is the paper's ϕ3 (Fig 4): interest(ct, at → rt) with the all-wild
// row (plain fd3) plus the four refining constant rows.
func phi3(sch *schema.Schema) *CFD {
	w := pattern.Wild
	return MustNew(sch, "phi3", "interest", []string{"ct", "at"}, []string{"rt"}, []Row{
		{LHS: pattern.Tup(w, w), RHS: pattern.Tup(w)},
		{LHS: pattern.Tup(pattern.Sym("UK"), pattern.Sym("saving")), RHS: pattern.Tup(pattern.Sym("4.5%"))},
		{LHS: pattern.Tup(pattern.Sym("UK"), pattern.Sym("checking")), RHS: pattern.Tup(pattern.Sym("1.5%"))},
		{LHS: pattern.Tup(pattern.Sym("US"), pattern.Sym("saving")), RHS: pattern.Tup(pattern.Sym("4%"))},
		{LHS: pattern.Tup(pattern.Sym("US"), pattern.Sym("checking")), RHS: pattern.Tup(pattern.Sym("1%"))},
	})
}

// interestData loads Fig 1(e): t11–t14, with t12 carrying the dirty 10.5%.
func interestData(sch *schema.Schema) *instance.Database {
	db := instance.NewDatabase(sch)
	db.Instance("interest").InsertConsts("EDI", "UK", "saving", "4.5%")
	db.Instance("interest").InsertConsts("EDI", "UK", "checking", "10.5%") // t12: dirty
	db.Instance("interest").InsertConsts("NYC", "US", "saving", "4%")
	db.Instance("interest").InsertConsts("NYC", "US", "checking", "1%")
	return db
}

func TestValidation(t *testing.T) {
	sch := interestSchema()
	w := pattern.Wild
	cases := []struct {
		name string
		rel  string
		x, y []string
		rows []Row
	}{
		{"unknown relation", "nope", []string{"ab"}, []string{"ct"}, []Row{{pattern.Tup(w), pattern.Tup(w)}}},
		{"unknown LHS attr", "interest", []string{"zz"}, []string{"ct"}, []Row{{pattern.Tup(w), pattern.Tup(w)}}},
		{"unknown RHS attr", "interest", []string{"ab"}, []string{"zz"}, []Row{{pattern.Tup(w), pattern.Tup(w)}}},
		{"dup LHS", "interest", []string{"ab", "ab"}, []string{"ct"}, []Row{{pattern.Tup(w, w), pattern.Tup(w)}}},
		{"overlap", "interest", []string{"ab"}, []string{"ab"}, []Row{{pattern.Tup(w), pattern.Tup(w)}}},
		{"empty RHS", "interest", []string{"ab"}, nil, []Row{{pattern.Tup(w), pattern.Tup()}}},
		{"no rows", "interest", []string{"ab"}, []string{"ct"}, nil},
		{"short row", "interest", []string{"ab", "ct"}, []string{"rt"}, []Row{{pattern.Tup(w), pattern.Tup(w)}}},
		{"constant outside finite domain", "interest", []string{"at"}, []string{"rt"},
			[]Row{{pattern.Tup(pattern.Sym("mortgage")), pattern.Tup(w)}}},
	}
	for _, c := range cases {
		if _, err := New(sch, "bad", c.rel, c.x, c.y, c.rows); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestPaperExample41(t *testing.T) {
	// Example 4.1: the Fig 1 instance satisfies fd3 (the all-wild row alone)
	// but violates ϕ3 via tuple t12 and the third pattern row.
	sch := interestSchema()
	db := interestData(sch)

	fd3 := MustNew(sch, "fd3", "interest", []string{"ct", "at"}, []string{"rt"},
		[]Row{{LHS: pattern.Wilds(2), RHS: pattern.Wilds(1)}})
	if !fd3.Satisfied(db) {
		t.Fatal("Fig 1 satisfies plain fd3")
	}
	if !fd3.IsTraditionalFD() {
		t.Fatal("fd3 is a traditional FD")
	}

	p3 := phi3(sch)
	if p3.IsTraditionalFD() {
		t.Fatal("ϕ3 has constants")
	}
	viols := p3.Violations(db)
	if len(viols) != 1 {
		t.Fatalf("want exactly 1 violation (t12), got %d: %v", len(viols), viols)
	}
	v := viols[0]
	if !v.T1.Eq(v.T2) {
		t.Fatal("the t12 violation is single-tuple")
	}
	if v.T1[3].Str() != "10.5%" {
		t.Fatalf("violating tuple = %v", v.T1)
	}
	if v.RowIdx != 2 {
		t.Fatalf("violated row = %d, want 2 (UK, checking || 1.5%%)", v.RowIdx)
	}
	if !strings.Contains(v.String(), "single-tuple") {
		t.Fatalf("String = %q", v.String())
	}
}

func TestCleanDataSatisfiesPhi3(t *testing.T) {
	sch := interestSchema()
	db := interestData(sch)
	clean := instance.NewDatabase(sch)
	for _, tup := range db.Instance("interest").Tuples() {
		if tup[3].Str() == "10.5%" {
			clean.Instance("interest").InsertConsts("EDI", "UK", "checking", "1.5%")
		} else {
			clean.Instance("interest").Insert(tup.Clone())
		}
	}
	if !phi3(sch).Satisfied(clean) {
		t.Fatal("repaired data must satisfy ϕ3")
	}
	if !SatisfiedAll([]*CFD{phi3(sch)}, clean) {
		t.Fatal("SatisfiedAll disagrees")
	}
}

func TestPairViolation(t *testing.T) {
	// Plain FD violation needs two tuples: same X, different Y.
	sch := interestSchema()
	fd := MustNew(sch, "fd", "interest", []string{"ct"}, []string{"rt"},
		[]Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	db := instance.NewDatabase(sch)
	db.Instance("interest").InsertConsts("EDI", "UK", "saving", "4.5%")
	db.Instance("interest").InsertConsts("GLA", "UK", "checking", "1.5%")
	viols := fd.Violations(db)
	if len(viols) != 1 {
		t.Fatalf("violations = %v", viols)
	}
	if viols[0].T1.Eq(viols[0].T2) {
		t.Fatal("FD violation must involve two distinct tuples")
	}
	if !strings.Contains(viols[0].String(), "pair") {
		t.Fatalf("String = %q", viols[0].String())
	}
}

func TestNormalForm(t *testing.T) {
	sch := interestSchema()
	c := MustNew(sch, "c", "interest", []string{"ab"}, []string{"ct", "rt"}, []Row{
		{LHS: pattern.Tup(pattern.Sym("EDI")), RHS: pattern.Tup(pattern.Sym("UK"), pattern.Wild)},
		{LHS: pattern.Wilds(1), RHS: pattern.Wilds(2)},
	})
	if c.IsNormal() {
		t.Fatal("2 rows × 2 RHS attrs is not normal")
	}
	nf := c.NormalForm()
	if len(nf) != 4 {
		t.Fatalf("normal form size = %d, want 4", len(nf))
	}
	ids := map[string]bool{}
	for _, n := range nf {
		if !n.IsNormal() {
			t.Fatalf("%v not normal", n)
		}
		if ids[n.ID] {
			t.Fatalf("duplicate normal-form ID %s", n.ID)
		}
		ids[n.ID] = true
	}
}

// TestNormalFormPreservesSemantics: a database satisfies a CFD iff it
// satisfies its normal form, checked over the paper instance and a dirty
// variant.
func TestNormalFormPreservesSemantics(t *testing.T) {
	sch := interestSchema()
	p3 := phi3(sch)
	nf := p3.NormalForm()
	if len(nf) != 5 {
		t.Fatalf("ϕ3 normal form size = %d", len(nf))
	}
	dirty := interestData(sch)
	clean := instance.NewDatabase(sch)
	clean.Instance("interest").InsertConsts("NYC", "US", "saving", "4%")

	for _, db := range []*instance.Database{dirty, clean} {
		if p3.Satisfied(db) != SatisfiedAll(nf, db) {
			t.Fatalf("normal form changed semantics on %v", db)
		}
	}
}

func TestNormalFormIdentityForNormal(t *testing.T) {
	sch := interestSchema()
	c := MustNew(sch, "n", "interest", []string{"ct"}, []string{"rt"},
		[]Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	nf := c.NormalForm()
	if len(nf) != 1 || nf[0] != c {
		t.Fatal("normal CFD must normalise to itself")
	}
}

func TestSingleTupleSatisfies(t *testing.T) {
	sch := interestSchema()
	rel := sch.MustRelationByName("interest")
	p3 := phi3(sch)
	good := instance.Consts("EDI", "UK", "checking", "1.5%")
	bad := instance.Consts("EDI", "UK", "checking", "10.5%")
	if !p3.SingleTupleSatisfies(rel, good) {
		t.Fatal("clean tuple satisfies ϕ3")
	}
	if p3.SingleTupleSatisfies(rel, bad) {
		t.Fatal("t12 violates ϕ3 singly")
	}
}

func TestConstants(t *testing.T) {
	sch := interestSchema()
	got := phi3(sch).Constants()
	if len(got) != 12 {
		t.Fatalf("Constants = %v", got)
	}
}

func TestNormalizeAll(t *testing.T) {
	sch := interestSchema()
	out := NormalizeAll([]*CFD{phi3(sch)})
	if len(out) != 5 {
		t.Fatalf("NormalizeAll = %d", len(out))
	}
}

// TestEmptyLHSCFD: an empty X (used by the non-triggering construction of
// Section 5.3 for unconditional CINDs) matches every tuple, so a constant
// RHS forces the attribute globally.
func TestEmptyLHSCFD(t *testing.T) {
	sch := interestSchema()
	c := MustNew(sch, "force", "interest", nil, []string{"ct"},
		[]Row{{LHS: pattern.Tup(), RHS: pattern.Tup(pattern.Sym("UK"))}})
	db := instance.NewDatabase(sch)
	db.Instance("interest").InsertConsts("EDI", "UK", "saving", "4.5%")
	if !c.Satisfied(db) {
		t.Fatal("UK row satisfies the forcing")
	}
	db.Instance("interest").InsertConsts("NYC", "US", "saving", "4%")
	// With an empty X every pair of tuples shares the (vacuous) LHS, so the
	// US row violates both singly (ct ≠ UK) and against the UK row (ct
	// values differ).
	viols := c.Violations(db)
	if len(viols) != 2 {
		t.Fatalf("violations = %v, want single-tuple + pair", viols)
	}
	rel := sch.MustRelationByName("interest")
	if c.SingleTupleSatisfies(rel, instance.Consts("NYC", "US", "saving", "4%")) {
		t.Fatal("single-tuple check must agree")
	}
}

func TestStringRendering(t *testing.T) {
	sch := interestSchema()
	c := MustNew(sch, "c1", "interest", []string{"ct", "at"}, []string{"rt"},
		[]Row{{LHS: pattern.Tup(pattern.Sym("UK"), pattern.Wild), RHS: pattern.Tup(pattern.Sym("4.5%"))}})
	got := c.String()
	want := "c1: (interest: ct, at -> rt, {(UK, _ || 4.5%)})"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
