// Package cfd implements conditional functional dependencies as reviewed in
// Section 4 of the paper (introduced by Bohannon et al. [9]): a CFD on a
// relation R is a pair (R: X → Y, Tp) of an embedded FD and a pattern
// tableau over X and Y. CFDs subsume traditional FDs (all-wildcard tableau)
// and, unlike FDs, can be violated by a single tuple.
package cfd

import (
	"fmt"
	"strings"

	"cind/internal/constraint"
	"cind/internal/instance"
	"cind/internal/pattern"
	"cind/internal/schema"
	"cind/internal/types"
)

// Row is one pattern tuple of a CFD tableau, split into its LHS part
// (over X) and RHS part (over Y). The split is explicit because X and Y may
// share attribute names in degenerate constraints, so a flat named tableau
// would be ambiguous.
type Row struct {
	LHS pattern.Tuple // over X
	RHS pattern.Tuple // over Y
}

// String renders "(a, _ || b)" in the paper's ‖-separated style (ASCII ||).
func (r Row) String() string {
	lhs := strings.TrimSuffix(strings.TrimPrefix(r.LHS.String(), "("), ")")
	rhs := strings.TrimSuffix(strings.TrimPrefix(r.RHS.String(), "("), ")")
	return "(" + lhs + " || " + rhs + ")"
}

// CFD is a conditional functional dependency (R: X → Y, Tp). It implements
// the sealed constraint.Constraint interface, so mixed CFD/CIND sets can be
// carried uniformly.
type CFD struct {
	constraint.Sealed

	ID   string
	Rel  string
	X    []string
	Y    []string
	Rows []Row
}

// Kind reports constraint.KindCFD.
func (c *CFD) Kind() constraint.Kind { return constraint.KindCFD }

// Validate re-runs the constructor checks against sch: relation and
// attribute existence, X/Y disjointness, tableau widths, and pattern
// constants belonging to their attribute domains.
func (c *CFD) Validate(sch *schema.Schema) error {
	_, err := New(sch, c.ID, c.Rel, c.X, c.Y, c.Rows)
	return err
}

// New builds a CFD and validates it against the schema: the relation and
// all attributes must exist, X and Y must be disjoint and duplicate-free,
// rows must have the right widths, and every pattern constant must belong
// to its attribute's domain.
func New(sch *schema.Schema, id, rel string, x, y []string, rows []Row) (*CFD, error) {
	r, ok := sch.Relation(rel)
	if !ok {
		return nil, fmt.Errorf("cfd %s: unknown relation %s", id, rel)
	}
	c := &CFD{
		ID: id, Rel: rel,
		X:    append([]string(nil), x...),
		Y:    append([]string(nil), y...),
		Rows: rows,
	}
	seen := map[string]bool{}
	for _, a := range c.X {
		if !r.Has(a) {
			return nil, fmt.Errorf("cfd %s: relation %s has no attribute %s", id, rel, a)
		}
		if seen[a] {
			return nil, fmt.Errorf("cfd %s: duplicate LHS attribute %s", id, a)
		}
		seen[a] = true
	}
	for _, a := range c.Y {
		if !r.Has(a) {
			return nil, fmt.Errorf("cfd %s: relation %s has no attribute %s", id, rel, a)
		}
		if seen[a] {
			return nil, fmt.Errorf("cfd %s: attribute %s on both sides", id, a)
		}
		seen[a] = true
	}
	if len(c.Y) == 0 {
		return nil, fmt.Errorf("cfd %s: empty RHS", id)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("cfd %s: empty pattern tableau", id)
	}
	for i, row := range rows {
		if len(row.LHS) != len(c.X) || len(row.RHS) != len(c.Y) {
			return nil, fmt.Errorf("cfd %s: row %d has widths %d||%d, want %d||%d",
				id, i, len(row.LHS), len(row.RHS), len(c.X), len(c.Y))
		}
		for j, s := range row.LHS {
			if s.IsConst() && !r.Domain(c.X[j]).Contains(s.Const()) {
				return nil, fmt.Errorf("cfd %s: row %d: %q not in dom(%s)", id, i, s.Const(), c.X[j])
			}
		}
		for j, s := range row.RHS {
			if s.IsConst() && !r.Domain(c.Y[j]).Contains(s.Const()) {
				return nil, fmt.Errorf("cfd %s: row %d: %q not in dom(%s)", id, i, s.Const(), c.Y[j])
			}
		}
	}
	return c, nil
}

// MustNew is New for statically valid CFDs.
func MustNew(sch *schema.Schema, id, rel string, x, y []string, rows []Row) *CFD {
	c, err := New(sch, id, rel, x, y, rows)
	if err != nil {
		panic(err)
	}
	return c
}

// String renders "(R: X -> Y, { rows })".
func (c *CFD) String() string {
	rows := make([]string, len(c.Rows))
	for i, r := range c.Rows {
		rows[i] = r.String()
	}
	return fmt.Sprintf("%s: (%s: %s -> %s, {%s})",
		c.ID, c.Rel, strings.Join(c.X, ", "), strings.Join(c.Y, ", "), strings.Join(rows, ", "))
}

// IsNormal reports whether the CFD is in the normal form of Section 4:
// a single pattern row and a single RHS attribute.
func (c *CFD) IsNormal() bool { return len(c.Rows) == 1 && len(c.Y) == 1 }

// NormalForm rewrites the CFD into an equivalent set of normal-form CFDs:
// one per (row, RHS attribute) pair. IDs are suffixed deterministically.
func (c *CFD) NormalForm() []*CFD {
	if c.IsNormal() {
		return []*CFD{c}
	}
	var out []*CFD
	for i, row := range c.Rows {
		for j, yAttr := range c.Y {
			id := c.ID
			if len(c.Rows) > 1 || len(c.Y) > 1 {
				id = fmt.Sprintf("%s.%d.%d", c.ID, i, j)
			}
			out = append(out, &CFD{
				ID: id, Rel: c.Rel,
				X:    c.X,
				Y:    []string{yAttr},
				Rows: []Row{{LHS: row.LHS.Clone(), RHS: pattern.Tup(row.RHS[j])}},
			})
		}
	}
	return out
}

// IsTraditionalFD reports whether every pattern field is '_', i.e. the CFD
// is a plain FD (the special case noted in Example 4.1).
func (c *CFD) IsTraditionalFD() bool {
	for _, r := range c.Rows {
		if !r.LHS.AllWild() || !r.RHS.AllWild() {
			return false
		}
	}
	return true
}

// Constants returns the constants appearing in the tableau.
func (c *CFD) Constants() []string {
	var out []string
	for _, r := range c.Rows {
		out = append(out, r.LHS.Constants()...)
		out = append(out, r.RHS.Constants()...)
	}
	return out
}

// NormalizeAll rewrites a set of CFDs into normal form.
func NormalizeAll(cfds []*CFD) []*CFD {
	var out []*CFD
	for _, c := range cfds {
		out = append(out, c.NormalForm()...)
	}
	return out
}

// xIdx / yIdx resolve attribute positions against the relation schema.
func (c *CFD) xIdx(r *schema.Relation) []int { return r.Cols(c.X) }
func (c *CFD) yIdx(r *schema.Relation) []int { return r.Cols(c.Y) }

// Violation records one witness of CFD failure: the pair of offending
// tuples (equal for single-tuple violations) and the tableau row violated.
type Violation struct {
	CFD    *CFD
	RowIdx int
	T1, T2 instance.Tuple
}

// String explains the violation.
func (v Violation) String() string {
	kind := "pair"
	if v.T1.Eq(v.T2) {
		kind = "single-tuple"
	}
	return fmt.Sprintf("%s violates %s (row %d, %s): %v, %v",
		v.CFD.Rel, v.CFD.ID, v.RowIdx, kind, v.T1, v.T2)
}

// Violations returns every violation of the CFD in the database, in
// deterministic order. Semantics (Section 4): for each pair of tuples
// t1, t2 and each row tp, if t1[X] = t2[X] ≍ tp[X] then it must hold that
// t1[Y] = t2[Y] ≍ tp[Y]. Pairs are reported once (t1 before t2 in
// insertion order, or t1 = t2 for single-tuple violations).
//
// The implementation hash-groups LHS-matching tuples by their X projection
// and partitions each group by Y projection, so clean data costs linear
// time and dirty data costs time proportional to the number of violating
// pairs reported.
//
// This method is the single-constraint reference implementation and the
// differential-testing oracle for internal/detect, which evaluates many
// constraints off shared interned indexes and is the path bulk callers
// (violation.Detect, the facade) use. The two produce identical violations
// in identical order.
func (c *CFD) Violations(db *instance.Database) []Violation {
	in := db.Instance(c.Rel)
	rel := in.Relation()
	xi, yi := c.xIdx(rel), c.yIdx(rel)
	tuples := in.Tuples()
	var out []Violation
	for ri, row := range c.Rows {
		// Group LHS-matching tuples by X projection, preserving order.
		groups := map[string][]instance.Tuple{}
		var order []string
		for _, t := range tuples {
			x := t.Project(xi)
			if !row.LHS.Matches(x) {
				continue
			}
			k := projKey(x)
			if _, seen := groups[k]; !seen {
				order = append(order, k)
			}
			groups[k] = append(groups[k], t)
		}
		for _, k := range order {
			group := groups[k]
			// Partition the group by Y projection.
			parts := map[string][]instance.Tuple{}
			var pOrder []string
			patOK := map[string]bool{}
			for _, t := range group {
				y := t.Project(yi)
				pk := projKey(y)
				if _, seen := parts[pk]; !seen {
					pOrder = append(pOrder, pk)
					patOK[pk] = row.RHS.Matches(y)
				}
				parts[pk] = append(parts[pk], t)
			}
			// Within a partition: equal Y values; pairs (including t,t)
			// violate exactly when the Y pattern fails.
			for _, pk := range pOrder {
				if patOK[pk] {
					continue
				}
				part := parts[pk]
				for i := 0; i < len(part); i++ {
					for j := i; j < len(part); j++ {
						out = append(out, Violation{CFD: c, RowIdx: ri, T1: part[i], T2: part[j]})
					}
				}
			}
			// Across partitions: unequal Y values; every cross pair
			// violates.
			for pi := 0; pi < len(pOrder); pi++ {
				for pj := pi + 1; pj < len(pOrder); pj++ {
					for _, t1 := range parts[pOrder[pi]] {
						for _, t2 := range parts[pOrder[pj]] {
							out = append(out, Violation{CFD: c, RowIdx: ri, T1: t1, T2: t2})
						}
					}
				}
			}
		}
	}
	return out
}

// projKey encodes a projection for hashing via the shared types.AppendKey
// encoder, keeping constants and chase variables in disjoint namespaces.
func projKey(vals []types.Value) string {
	var b []byte
	for _, v := range vals {
		b = types.AppendKey(b, v)
	}
	return string(b)
}

// SingleTupleSatisfies reports whether the singleton instance {t} satisfies
// the CFD. With one tuple the equality half of the semantics is trivial, so
// the check reduces to: t[X] ≍ tp[X] implies t[Y] ≍ tp[Y] for every row.
// Consistency checking leans on this: a set of CFDs over one relation is
// consistent iff some single tuple satisfies all of them [9].
func (c *CFD) SingleTupleSatisfies(rel *schema.Relation, t instance.Tuple) bool {
	xi, yi := c.xIdx(rel), c.yIdx(rel)
	for _, row := range c.Rows {
		if row.LHS.Matches(t.Project(xi)) && !row.RHS.Matches(t.Project(yi)) {
			return false
		}
	}
	return true
}

// Satisfied reports whether the database satisfies the CFD.
func (c *CFD) Satisfied(db *instance.Database) bool { return len(c.Violations(db)) == 0 }

// SatisfiedAll reports whether the database satisfies every CFD in the set.
func SatisfiedAll(cfds []*CFD, db *instance.Database) bool {
	for _, c := range cfds {
		if !c.Satisfied(db) {
			return false
		}
	}
	return true
}

