// Package constraint defines the common type of the library's conditional
// dependencies. The paper's central observation (Section 2) is that CFDs
// and CINDs *extend* FDs and INDs: a traditional dependency is exactly a
// conditional one with an all-wildcard pattern tableau. This package gives
// that family a single static type — the sealed Constraint interface that
// *cfd.CFD and *core.CIND implement — so mixed constraint sets can be
// carried, validated and dispatched uniformly instead of as parallel
// per-kind slices.
//
// The interface is sealed: it embeds an unexported method that only types
// embedding Sealed (a marker this package hands to internal/cfd and
// internal/core) can satisfy. Downstream code can therefore switch on
// Kind() exhaustively.
package constraint

import "cind/internal/schema"

// Kind discriminates the constraint family.
type Kind uint8

const (
	// KindCFD is a conditional functional dependency (Section 4, [9]).
	KindCFD Kind = iota + 1
	// KindCIND is a conditional inclusion dependency (Section 2).
	KindCIND
)

// String renders the kind as the lowercase tag used in reports.
func (k Kind) String() string {
	switch k {
	case KindCFD:
		return "cfd"
	case KindCIND:
		return "cind"
	}
	return "constraint"
}

// Constraint is the sealed common interface of *cfd.CFD and *core.CIND.
// Kind discriminates the two; Validate re-checks the constraint against a
// schema (relation and attribute existence, tableau widths, domain
// membership — the same checks the constructors run); String renders the
// paper-style syntax. No other type can implement Constraint.
type Constraint interface {
	// Kind reports which conditional dependency family the constraint
	// belongs to.
	Kind() Kind
	// Validate checks the constraint against sch, returning the first
	// structural error (unknown relation or attribute, bad tableau width,
	// out-of-domain pattern constant, ...), or nil if the constraint is
	// well formed over sch.
	Validate(sch *schema.Schema) error
	// String renders the constraint in the paper's textual style.
	String() string

	sealed()
}

// Sealed is the embedding marker that seals Constraint: a type satisfies
// the interface only by embedding Sealed, and only internal/cfd and
// internal/core do. It contributes no fields and no behaviour.
type Sealed struct{}

func (Sealed) sealed() {}
