package implication

import (
	"testing"

	"cind/internal/bank"
	cind "cind/internal/core"
	"cind/internal/pattern"
)

var w = pattern.Wild

func sym(v string) pattern.Symbol { return pattern.Sym(v) }

func TestMemberOfSigmaImplied(t *testing.T) {
	sch := bank.Schema()
	sigma := bank.CINDs(sch)
	out := Decide(sch, sigma, bank.Psi3(sch), Options{})
	if out.Verdict != Implied {
		t.Fatalf("member of Σ: verdict = %v (%s)", out.Verdict, out.Reason)
	}
	if out.Proof == nil {
		t.Fatal("inference path must produce a proof")
	}
}

// TestExample33 is the paper's implication question: with dom(at) =
// {saving, checking}, Σ of Fig 2 entails
// ψ = (account_B[at; nil] ⊆ interest[at; nil], (_||_)).
func TestExample33(t *testing.T) {
	sch := bank.Schema()
	sigma := bank.CINDs(sch)
	goal := cind.MustNew(sch, "ex33", "account_EDI", []string{"at"}, nil,
		"interest", []string{"at"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	out := Decide(sch, sigma, goal, Options{})
	if out.Verdict != Implied {
		t.Fatalf("Example 3.3 must be implied, got %v (%s)", out.Verdict, out.Reason)
	}
}

func TestConverseNotImplied(t *testing.T) {
	sch := bank.Schema()
	sigma := []*cind.CIND{bank.Psi3(sch)}
	goal := cind.MustNew(sch, "conv", "interest", []string{"ab"}, nil,
		"saving", []string{"ab"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	out := Decide(sch, sigma, goal, Options{})
	if out.Verdict != NotImplied {
		t.Fatalf("converse of ψ3: verdict = %v (%s)", out.Verdict, out.Reason)
	}
	if out.Counterexample == nil {
		t.Fatal("refutation must carry a counterexample")
	}
	// The counterexample must satisfy Σ and violate the goal.
	if !cind.SatisfiedAll(sigma, out.Counterexample) {
		t.Fatal("counterexample must satisfy Σ")
	}
	if goal.Satisfied(out.Counterexample) {
		t.Fatal("counterexample must violate the goal")
	}
}

// TestTransitiveChainImplied: ψ1(NYC) then ψ3 implies that every NYC saving
// account's branch appears in interest with branch NYC.
func TestTransitiveChainImplied(t *testing.T) {
	sch := bank.Schema()
	sigma := []*cind.CIND{bank.Psi1(sch, "NYC"), bank.Psi3(sch)}
	goal := cind.MustNew(sch, "chain", "account_NYC", nil, []string{"at"},
		"interest", nil, []string{"ab"},
		[]cind.Row{{LHS: pattern.Tup(sym("saving")), RHS: pattern.Tup(sym("NYC"))}})
	out := Decide(sch, sigma, goal, Options{})
	if out.Verdict != Implied {
		t.Fatalf("chain: verdict = %v (%s)", out.Verdict, out.Reason)
	}
}

// TestWeakenedYpImplied: dropping a Yp requirement of a Σ member stays
// implied (CIND6 direction).
func TestWeakenedYpImplied(t *testing.T) {
	sch := bank.Schema()
	sigma := []*cind.CIND{bank.Psi5(sch)}
	goal := cind.MustNew(sch, "weak", "saving", nil, []string{"ab"},
		"interest", nil, []string{"ab", "at"},
		[]cind.Row{{LHS: pattern.Tup(sym("EDI")), RHS: pattern.Tup(sym("EDI"), sym("saving"))}})
	out := Decide(sch, sigma, goal, Options{})
	if out.Verdict != Implied {
		t.Fatalf("weakened ψ5: verdict = %v (%s)", out.Verdict, out.Reason)
	}
}

// TestStrengthenedYpNotImplied: inventing a stronger Yp requirement is
// refuted by the chase.
func TestStrengthenedYpNotImplied(t *testing.T) {
	sch := bank.Schema()
	sigma := []*cind.CIND{bank.Psi3(sch)}
	goal := cind.MustNew(sch, "strong", "saving", []string{"ab"}, nil,
		"interest", []string{"ab"}, []string{"ct"},
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Tup(w, sym("UK"))}})
	out := Decide(sch, sigma, goal, Options{})
	if out.Verdict != NotImplied {
		t.Fatalf("strengthened goal: verdict = %v (%s)", out.Verdict, out.Reason)
	}
}

// TestEmptySigma: nothing but reflexivity is implied by the empty set.
func TestEmptySigma(t *testing.T) {
	sch := bank.Schema()
	refl := cind.MustNew(sch, "r", "saving", []string{"an", "ab"}, nil,
		"saving", []string{"an", "ab"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(2), RHS: pattern.Wilds(2)}})
	if out := Decide(sch, nil, refl, Options{}); out.Verdict != Implied {
		t.Fatalf("reflexivity: %v (%s)", out.Verdict, out.Reason)
	}
	other := bank.Psi3(sch)
	if out := Decide(sch, nil, other, Options{}); out.Verdict != NotImplied {
		t.Fatalf("ψ3 from nothing: %v (%s)", out.Verdict, out.Reason)
	}
}

// TestFiniteDomainCaseSplit: implication that holds only because the finite
// domain is covered — the paper's canonical EXPTIME-hardness shape. With Σ
// providing one CIND per at-value and the goal quantifying over all at
// values, the chase must case-split to answer Implied.
func TestFiniteDomainCaseSplit(t *testing.T) {
	sch := bank.Schema()
	sigma := []*cind.CIND{
		// For at = saving: interest row exists with that at.
		cind.MustNew(sch, "s", "account_EDI", nil, []string{"at"},
			"interest", nil, []string{"at"},
			[]cind.Row{{LHS: pattern.Tup(sym("saving")), RHS: pattern.Tup(sym("saving"))}}),
		cind.MustNew(sch, "c", "account_EDI", nil, []string{"at"},
			"interest", nil, []string{"at"},
			[]cind.Row{{LHS: pattern.Tup(sym("checking")), RHS: pattern.Tup(sym("checking"))}}),
	}
	goal := cind.MustNew(sch, "g", "account_EDI", []string{"at"}, nil,
		"interest", []string{"at"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	out := Decide(sch, sigma, goal, Options{})
	if out.Verdict != Implied {
		t.Fatalf("finite cover: verdict = %v (%s)", out.Verdict, out.Reason)
	}

	// Removing one case breaks the implication.
	out = Decide(sch, sigma[:1], goal, Options{})
	if out.Verdict != NotImplied {
		t.Fatalf("half cover: verdict = %v (%s)", out.Verdict, out.Reason)
	}
}

func TestMinimalCoverDropsRedundant(t *testing.T) {
	sch := bank.Schema()
	psi3 := bank.Psi3(sch)
	// A weaker copy of ψ3 with an Xp restriction is implied by ψ3.
	weak := cind.MustNew(sch, "weak3", "saving", []string{"ab"}, []string{"an"},
		"interest", []string{"ab"}, nil,
		[]cind.Row{{LHS: pattern.Tup(w, sym("01")), RHS: pattern.Tup(w)}})
	sigma := []*cind.CIND{psi3, weak}
	cover := MinimalCover(sch, sigma, Options{})
	if len(cover) != 1 {
		t.Fatalf("cover size = %d, want 1 (%v)", len(cover), cover)
	}
	if cover[0].ID != "psi3" {
		t.Fatalf("cover kept %s, want psi3", cover[0].ID)
	}
	if !Equivalent(sch, sigma, cover, Options{}) {
		t.Fatal("cover must be equivalent to the input")
	}
}

func TestEquivalentDistinctSets(t *testing.T) {
	sch := bank.Schema()
	a := []*cind.CIND{bank.Psi3(sch)}
	b := []*cind.CIND{bank.Psi4(sch)}
	if Equivalent(sch, a, b, Options{}) {
		t.Fatal("ψ3 and ψ4 are not equivalent")
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		Implied: "implied", NotImplied: "not-implied", Unknown: "unknown", Verdict(7): "Verdict(7)",
	} {
		if v.String() != want {
			t.Errorf("String(%d) = %q", int(v), v.String())
		}
	}
}

// TestCounterexampleIsModel: whenever NotImplied is returned across a batch
// of goals, the counterexample genuinely separates Σ from the goal.
func TestCounterexampleIsModel(t *testing.T) {
	sch := bank.Schema()
	sigma := bank.CINDs(sch)
	goals := []*cind.CIND{
		cind.MustNew(sch, "g1", "interest", []string{"ab"}, nil,
			"saving", []string{"ab"}, nil,
			[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}}),
		cind.MustNew(sch, "g2", "saving", []string{"an"}, nil,
			"checking", []string{"an"}, nil,
			[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}}),
	}
	for _, g := range goals {
		out := Decide(sch, sigma, g, Options{})
		if out.Verdict != NotImplied {
			t.Fatalf("%s: verdict = %v (%s)", g.ID, out.Verdict, out.Reason)
		}
		if !cind.SatisfiedAll(sigma, out.Counterexample) || g.Satisfied(out.Counterexample) {
			t.Fatalf("%s: counterexample is not separating", g.ID)
		}
	}
}

// TestDecideAgainstWitnessOracle cross-checks Decide's positive answers:
// the Theorem 3.2 witness for Σ satisfies every CIND that Decide declares
// implied (a necessary condition of soundness).
func TestDecideAgainstWitnessOracle(t *testing.T) {
	sch := bank.Schema()
	sigma := bank.CINDs(sch)
	db, err := cind.Witness(sch, sigma, 0)
	if err != nil {
		t.Fatal(err)
	}
	candidates := []*cind.CIND{
		bank.Psi3(sch),
		bank.Psi5(sch),
		cind.MustNew(sch, "ex33", "account_EDI", []string{"at"}, nil,
			"interest", []string{"at"}, nil,
			[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}}),
	}
	for _, g := range candidates {
		out := Decide(sch, sigma, g, Options{})
		if out.Verdict == Implied && !g.Satisfied(db) {
			t.Fatalf("%s: declared implied but violated on a Σ-model", g.ID)
		}
	}
}
