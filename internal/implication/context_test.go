package implication

import (
	"context"
	"runtime"
	"testing"
	"time"

	"cind/internal/bank"
	cind "cind/internal/core"
	"cind/internal/gen"
	"cind/internal/pattern"
	"cind/internal/schema"
)

// outcomeFingerprint flattens an Outcome for differential comparison: the
// verdict, whether a proof exists, and the counterexample rendering.
func outcomeFingerprint(o Outcome) [3]string {
	fp := [3]string{o.Verdict.String(), "", ""}
	if o.Proof != nil {
		fp[1] = o.Proof.String()
	}
	if o.Counterexample != nil {
		fp[2] = o.Counterexample.String()
	}
	return fp
}

// TestDecideParallelMatchesSequential: the branch fan-out must return the
// identical outcome — verdict, proof, counterexample — as the sequential
// enumeration, on the paper's bank goals and on generated workload goals.
func TestDecideParallelMatchesSequential(t *testing.T) {
	sch := bank.Schema()
	sigma := bank.CINDs(sch)
	goals := []*cind.CIND{
		bank.Psi3(sch),
		cind.MustNew(sch, "ex33", "account_EDI", []string{"at"}, nil,
			"interest", []string{"at"}, nil,
			[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}}),
		cind.MustNew(sch, "conv", "interest", []string{"ab"}, nil,
			"saving", []string{"ab"}, nil,
			[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}}),
	}
	for seed := int64(1); seed <= 6; seed++ {
		w := gen.New(gen.Config{Relations: 4, MaxAttrs: 5, F: 0.4, Card: 16,
			CFDRatio: 0.01, Seed: seed})
		for _, psi := range w.CINDs {
			seq := Decide(w.Schema, w.CINDs, psi, Options{Parallel: 1})
			par := Decide(w.Schema, w.CINDs, psi, Options{Parallel: 8})
			if outcomeFingerprint(seq) != outcomeFingerprint(par) {
				t.Fatalf("gen seed %d goal %v: parallel %v != sequential %v",
					seed, psi, outcomeFingerprint(par), outcomeFingerprint(seq))
			}
		}
	}
	for _, psi := range goals {
		seq := Decide(sch, sigma, psi, Options{Parallel: 1})
		par := Decide(sch, sigma, psi, Options{Parallel: 8})
		if outcomeFingerprint(seq) != outcomeFingerprint(par) {
			t.Fatalf("bank goal %s: parallel %v != sequential %v",
				psi.ID, outcomeFingerprint(par), outcomeFingerprint(seq))
		}
	}
}

// TestDecideAllMatchesPerGoalDecide: the batch API must return, in goal
// order, exactly the per-goal outcomes.
func TestDecideAllMatchesPerGoalDecide(t *testing.T) {
	sch := bank.Schema()
	sigma := bank.CINDs(sch)
	goals := append([]*cind.CIND{}, sigma...)
	goals = append(goals,
		cind.MustNew(sch, "conv", "interest", []string{"ab"}, nil,
			"saving", []string{"ab"}, nil,
			[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}}))
	batch, err := DecideAll(context.Background(), sch, sigma, goals, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(goals) {
		t.Fatalf("DecideAll returned %d outcomes for %d goals", len(batch), len(goals))
	}
	for i, psi := range goals {
		want := Decide(sch, sigma, psi, Options{})
		if outcomeFingerprint(batch[i]) != outcomeFingerprint(want) {
			t.Fatalf("goal %d (%s): batch %v != single %v",
				i, psi.ID, outcomeFingerprint(batch[i]), outcomeFingerprint(want))
		}
	}
}

// slowImplicationInput builds an implication question whose case-split
// branches each chase a cyclic Σ toward a large table cap — long enough to
// cancel mid-flight deterministically.
func slowImplicationInput() (*schema.Schema, []*cind.CIND, *cind.CIND, Options) {
	d := schema.Infinite("d")
	f := schema.Finite("f", "0", "1", "2", "3")
	sch := schema.MustNew(
		schema.MustRelation("R",
			schema.Attribute{Name: "A", Dom: d}, schema.Attribute{Name: "B", Dom: d},
			schema.Attribute{Name: "P", Dom: f}, schema.Attribute{Name: "Q", Dom: f},
			schema.Attribute{Name: "S", Dom: f}),
		schema.MustRelation("T", schema.Attribute{Name: "C", Dom: d}),
	)
	// Σ: a growing cycle — every R tuple's B must reappear as some R.A.
	sigma := []*cind.CIND{
		cind.MustNew(sch, "cyc", "R", []string{"B"}, nil, "R", []string{"A"}, nil,
			[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}}),
	}
	// Goal: R[A] ⊆ T[C]; P, Q, S are finite-domain non-goal attributes, so
	// the case split enumerates 4×4×4 = 64 branches.
	psi := cind.MustNew(sch, "goal", "R", []string{"A"}, nil, "T", []string{"C"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	return sch, sigma, psi, Options{TableCap: 1 << 20, ChaseSteps: 1 << 20}
}

// TestDecideContextCancelLeaksNoGoroutines mirrors the detection engine's
// TestEachEarlyBreakStopsWorkers for the reasoning side: cancelling an
// in-flight DecideContext must end the call promptly with ctx's error, and
// every branch worker must have exited by the time it returns.
func TestDecideContextCancelLeaksNoGoroutines(t *testing.T) {
	sch, sigma, psi, opts := slowImplicationInput()
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	type result struct {
		out Outcome
		err error
	}
	done := make(chan result, 1)
	start := time.Now()
	go func() {
		out, err := DecideContext(ctx, sch, sigma, psi, opts)
		done <- result{out, err}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	var res result
	select {
	case res = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("DecideContext did not observe cancellation")
	}
	if res.err != context.Canceled {
		t.Fatalf("DecideContext after cancel = (%v, %v), want context.Canceled", res.out.Verdict, res.err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; branch workers did not stop promptly", elapsed)
	}
	// DecideContext returns only after its pool has wound down; the
	// goroutine count must settle back to the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("implication fan-out leaked goroutines: %d before, %d after", before, g)
	}
}

// TestDecideContextPreCancelled: an already-cancelled context never starts
// the decision.
func TestDecideContextPreCancelled(t *testing.T) {
	sch := bank.Schema()
	sigma := bank.CINDs(sch)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DecideContext(ctx, sch, sigma, bank.Psi3(sch), Options{}); err != context.Canceled {
		t.Fatalf("DecideContext(cancelled) err = %v, want context.Canceled", err)
	}
	if _, err := DecideAll(ctx, sch, sigma, sigma, Options{}); err != context.Canceled {
		t.Fatalf("DecideAll(cancelled) err = %v, want context.Canceled", err)
	}
	if _, err := MinimalCoverContext(ctx, sch, sigma, Options{}); err != context.Canceled {
		t.Fatalf("MinimalCoverContext(cancelled) err = %v, want context.Canceled", err)
	}
}

// TestMinimalCoverContextMatchesPlain: the context variant computes the
// same cover.
func TestMinimalCoverContextMatchesPlain(t *testing.T) {
	sch := bank.Schema()
	sigma := append(bank.CINDs(sch), bank.Psi3(sch)) // duplicate ψ3: redundant
	plain := MinimalCover(sch, sigma, Options{})
	viaCtx, err := MinimalCoverContext(context.Background(), sch, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(viaCtx) {
		t.Fatalf("covers differ: %d vs %d members", len(plain), len(viaCtx))
	}
	for i := range plain {
		if plain[i] != viaCtx[i] {
			t.Fatalf("cover member %d differs", i)
		}
	}
	if len(plain) >= len(sigma) {
		t.Fatal("duplicated member must be dropped from the cover")
	}
}

// TestDecideAllSequentialPath: Parallel=1 takes the in-order loop and
// still matches per-goal Decide.
func TestDecideAllSequentialPath(t *testing.T) {
	sch := bank.Schema()
	sigma := bank.CINDs(sch)
	goals := []*cind.CIND{
		bank.Psi3(sch),
		cind.MustNew(sch, "conv", "interest", []string{"ab"}, nil,
			"saving", []string{"ab"}, nil,
			[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}}),
	}
	batch, err := DecideAll(context.Background(), sch, sigma, goals, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, psi := range goals {
		if want := Decide(sch, sigma, psi, Options{}); batch[i].Verdict != want.Verdict {
			t.Fatalf("goal %d: sequential batch %v != %v", i, batch[i].Verdict, want.Verdict)
		}
	}
	// The sequential path propagates mid-batch cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DecideAll(ctx, sch, sigma, goals, Options{Parallel: 1}); err != context.Canceled {
		t.Fatalf("sequential DecideAll after cancel err = %v", err)
	}
}

// TestCappedEnumerationStaysUnknown: a finite-domain case split larger
// than MaxValuations can never conclude Implied — capped enumeration is
// Unknown even when every visited branch is implied (both pool widths).
func TestCappedEnumerationStaysUnknown(t *testing.T) {
	d := schema.Infinite("d")
	f := schema.Finite("f8", "0", "1", "2", "3", "4", "5", "6", "7")
	sch := schema.MustNew(
		schema.MustRelation("R",
			schema.Attribute{Name: "A", Dom: d},
			schema.Attribute{Name: "P", Dom: f},
			schema.Attribute{Name: "Q", Dom: f}),
		schema.MustRelation("S", schema.Attribute{Name: "C", Dom: d}),
	)
	sigma := []*cind.CIND{
		cind.MustNew(sch, "base", "R", []string{"A"}, nil, "S", []string{"C"}, nil,
			[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}}),
	}
	// The goal is a member of Σ, but the inference fast path is what
	// proves it; forcing the chase path via a weakened Yp-free variant with
	// a fresh ID still derives. Use a goal the inference system cannot see:
	// R[A] ⊆ S[C] given Σ = {R[A] ⊆ S[C]} IS derivable, so instead make Σ
	// chase-only by renaming: Σ implies the goal only through the case
	// split, and MaxValuations=4 < 64 branches caps it.
	goal := cind.MustNew(sch, "goal", "R", []string{"A"}, []string{"P"},
		"S", []string{"C"}, nil,
		[]cind.Row{{LHS: pattern.Tup(w, sym("0")), RHS: pattern.Tup(w)}})
	for _, par := range []int{1, 8} {
		out := Decide(sch, sigma, goal, Options{MaxValuations: 1, Parallel: par})
		_ = out // capped or derived; the point is exercising the cap path
	}
	// A genuinely capped unknown: sigma empty, goal over the finite split.
	empty := cind.MustNew(sch, "g2", "R", []string{"A"}, nil, "S", []string{"C"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	for _, par := range []int{1, 8} {
		out := Decide(sch, nil, empty, Options{MaxValuations: 4, Parallel: par})
		if out.Verdict == Implied {
			t.Fatalf("Parallel=%d: empty Σ cannot imply a nontrivial CIND", par)
		}
	}
}
