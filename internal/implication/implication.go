// Package implication decides implication of CINDs: given Σ and ψ, whether
// Σ ⊨ ψ. The problem is PSPACE-complete without finite-domain attributes
// and EXPTIME-complete with them (Theorems 3.4/3.5), so the practical
// decision procedure here is budgeted; within its budget it is sound in
// both directions and returns Unknown when a budget trips.
//
// Two independent engines are combined:
//
//   - the inference system I (package inference), which yields positive
//     answers with a replayable proof (Theorem 3.3: I is sound and
//     complete);
//   - a canonical-database chase: seed a single generic tuple matching ψ's
//     LHS pattern, chase with Σ, and inspect the fixpoint. A fixpoint in
//     which the goal match exists is universal (every model of Σ containing
//     a matching tuple contains a homomorphic image of it), giving Implied;
//     a grounded fixpoint in which the match is absent is itself a model of
//     Σ violating ψ, giving NotImplied with a counterexample database.
//
// Finite-domain attributes are handled by case analysis over their values
// (bounded by Options.MaxValuations) — the source of the EXPTIME lower
// bound, and the reason the budget exists.
package implication

import (
	"context"
	"fmt"
	"sync/atomic"

	"cind/internal/chase"
	"cind/internal/conc"
	cind "cind/internal/core"
	"cind/internal/inference"
	"cind/internal/instance"
	"cind/internal/schema"
	"cind/internal/types"
)

// Verdict is the outcome of an implication check.
type Verdict int

const (
	// Implied: Σ ⊨ ψ, with a proof or a universal chase argument.
	Implied Verdict = iota
	// NotImplied: a counterexample database satisfies Σ but violates ψ.
	NotImplied
	// Unknown: budgets exhausted before either certificate was found.
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case Implied:
		return "implied"
	case NotImplied:
		return "not-implied"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Outcome carries the verdict and its certificate.
type Outcome struct {
	Verdict Verdict
	// Proof is set when the verdict came from the inference system.
	Proof *inference.Proof
	// Counterexample is a ground database satisfying Σ and violating ψ,
	// set on NotImplied.
	Counterexample *instance.Database
	// Reason is a one-line human explanation.
	Reason string
}

// Options budgets the decision procedure. Zero values give workable
// defaults.
type Options struct {
	Inference     inference.Options
	ChaseSteps    int // per-branch chase step cap (default 20000)
	TableCap      int // per-branch table cap (default 1000)
	MaxValuations int // finite-domain case-split cap (default 64)
	// Parallel bounds the worker goroutines the finite-domain case-split
	// branches fan out over (and, in DecideAll, the goals); 0 means
	// GOMAXPROCS, 1 forces the sequential order. The outcome — verdict and
	// certificate — is identical regardless.
	Parallel int
}

func (o Options) withDefaults() Options {
	if o.ChaseSteps == 0 {
		o.ChaseSteps = 20000
	}
	if o.TableCap == 0 {
		o.TableCap = 1000
	}
	if o.MaxValuations == 0 {
		o.MaxValuations = 64
	}
	return o
}

// Decide determines whether sigma ⊨ psi. A nil goal comes back as Unknown
// (never as the zero Outcome, whose Verdict would read Implied).
func Decide(sch *schema.Schema, sigma []*cind.CIND, psi *cind.CIND, opts Options) Outcome {
	out, err := DecideContext(context.Background(), sch, sigma, psi, opts)
	if err != nil {
		return Outcome{Verdict: Unknown, Reason: err.Error()}
	}
	return out
}

// DecideContext is Decide with cooperative cancellation and a parallel
// fan-out over the finite-domain case-split branches: the canonical seeds
// of each goal component are independent, so they chase on a bounded
// worker pool (Options.Parallel; 0 = GOMAXPROCS) and merge
// deterministically — the verdict, and on refutation the counterexample of
// the lowest-numbered refuting branch, are identical to the sequential
// enumeration regardless of scheduling. Cancellation is polled per branch
// and per chase operation inside each branch; on cancellation the partial
// outcome is discarded, ctx's error is returned, and every worker has
// exited before DecideContext returns (no goroutine outlives the call).
func DecideContext(ctx context.Context, sch *schema.Schema, sigma []*cind.CIND, psi *cind.CIND, opts Options) (Outcome, error) {
	opts = opts.withDefaults()
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}
	if psi == nil {
		return Outcome{}, fmt.Errorf("implication: nil goal")
	}

	// Fast path and positive certificate: the inference system.
	if proof, ok := inference.Derive(sch, sigma, psi, opts.Inference); ok {
		return Outcome{Verdict: Implied, Proof: proof, Reason: "derived in inference system I"}, nil
	}

	// Chase every normal-form component of the goal.
	goals := cind.NormalizeAll([]*cind.CIND{psi})
	allImplied := true
	for _, g := range goals {
		out, err := decideComponent(ctx, sch, sigma, g, opts)
		if err != nil {
			return Outcome{}, err
		}
		switch out.Verdict {
		case NotImplied:
			return out, nil
		case Unknown:
			allImplied = false
		}
	}
	if allImplied {
		return Outcome{Verdict: Implied, Reason: "universal chase contains the required match in every branch"}, nil
	}
	return Outcome{Verdict: Unknown, Reason: "budgets exhausted before a certificate was found"}, nil
}

// DecideAll is the batch form: it decides sigma ⊨ psi for every goal and
// returns the outcomes in goal order, identical to calling Decide per
// goal. A single goal keeps the full case-split branch fan-out; multiple
// goals fan out at the goal level instead (each goal's branch enumeration
// then runs sequentially, so the pool is not oversubscribed). On
// cancellation the partial slice is discarded and ctx's error returned.
func DecideAll(ctx context.Context, sch *schema.Schema, sigma []*cind.CIND, psis []*cind.CIND, opts Options) ([]Outcome, error) {
	opts = opts.withDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for i, psi := range psis {
		if psi == nil {
			return nil, fmt.Errorf("implication: goal %d is nil", i)
		}
	}
	if len(psis) == 1 {
		out, err := DecideContext(ctx, sch, sigma, psis[0], opts)
		if err != nil {
			return nil, err
		}
		return []Outcome{out}, nil
	}
	out := make([]Outcome, len(psis))
	goalOpts := opts
	goalOpts.Parallel = 1
	conc.ForEachIdx(conc.Workers(opts.Parallel, len(psis)), len(psis), func(i int) {
		// Errors are dropped per goal: the only error DecideContext can
		// return is cancellation, which the merge below re-checks (and
		// which makes the remaining calls immediate no-ops).
		out[i], _ = DecideContext(ctx, sch, sigma, psis[i], goalOpts)
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// decideComponent runs the canonical-database analysis for one normal-form
// goal component.
func decideComponent(ctx context.Context, sch *schema.Schema, sigma []*cind.CIND, g *cind.CIND, opts Options) (Outcome, error) {
	rel := sch.MustRelationByName(g.LHSRel)

	// Identify the seed tuple's fixed and enumerated positions.
	xpIdx := map[string]string{} // attr -> constant from g's Xp
	xpPat := g.XpPattern()
	for i, a := range g.Xp {
		xpIdx[a] = xpPat[i].Const()
	}

	var enums []enumAttr
	seedBase := make(instance.Tuple, rel.Arity())
	frozen := 0
	for j, a := range rel.Attrs() {
		if c, ok := xpIdx[a.Name]; ok {
			seedBase[j] = types.C(c)
			continue
		}
		if a.Dom.IsFinite() {
			enums = append(enums, enumAttr{pos: j, vals: a.Dom.Values()})
			continue
		}
		frozen++
		seedBase[j] = types.C(fmt.Sprintf("⊥seed%d", frozen))
	}

	// Materialise the finite-domain valuations of the seed, up to the cap;
	// capped enumeration can never conclude Implied.
	var seeds []instance.Tuple
	capped := false
	enumerate(enums, seedBase, func(seed instance.Tuple) bool {
		if len(seeds) >= opts.MaxValuations {
			capped = true
			return false
		}
		seeds = append(seeds, seed)
		return true
	})

	verdicts := make([]Verdict, len(seeds))
	counters := make([]*instance.Database, len(seeds))

	// Branch fan-out. A refutation at branch i makes every branch above i
	// irrelevant (the merge picks the lowest refuting branch), so later
	// branches are skipped once one refutes; branches below a found
	// refutation still run, keeping the reported counterexample
	// deterministic. With one worker the indexes run in order, so the skip
	// check reduces to the classical stop-at-first-refutation.
	minRefuted := int64(len(seeds))
	conc.ForEachIdx(conc.Workers(opts.Parallel, len(seeds)), len(seeds), func(i int) {
		if int64(i) > atomic.LoadInt64(&minRefuted) {
			return
		}
		v, cex, err := chaseBranch(ctx, sch, sigma, g, seeds[i], opts)
		if err != nil {
			return // cancellation: the merge re-checks ctx
		}
		verdicts[i], counters[i] = v, cex
		if v == NotImplied {
			for {
				cur := atomic.LoadInt64(&minRefuted)
				if int64(i) >= cur || atomic.CompareAndSwapInt64(&minRefuted, cur, int64(i)) {
					break
				}
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return Outcome{}, err
	}

	branchImplied := 0
	for i := range seeds {
		switch verdicts[i] {
		case NotImplied:
			return Outcome{
				Verdict:        NotImplied,
				Counterexample: counters[i],
				Reason:         "chase fixpoint is a model of Σ violating ψ",
			}, nil
		case Implied:
			branchImplied++
		}
	}
	if !capped && branchImplied == len(seeds) {
		return Outcome{Verdict: Implied, Reason: "all canonical branches contain the required match"}, nil
	}
	return Outcome{Verdict: Unknown, Reason: "some chase branch was inconclusive"}, nil
}

// enumAttr is a seed-tuple position whose finite domain is enumerated.
type enumAttr struct {
	pos  int
	vals []string
}

// enumerate calls visit for every combination of the enumerated attribute
// values layered over base. visit returning false stops the enumeration.
func enumerate(enums []enumAttr, base instance.Tuple, visit func(instance.Tuple) bool) {
	var rec func(i int, cur instance.Tuple) bool
	rec = func(i int, cur instance.Tuple) bool {
		if i == len(enums) {
			return visit(cur.Clone())
		}
		for _, v := range enums[i].vals {
			cur[enums[i].pos] = types.C(v)
			if !rec(i+1, cur) {
				return false
			}
		}
		return true
	}
	rec(0, base.Clone())
}

// chaseBranch analyses one canonical seed: it runs the universal
// (fresh-variable) chase for the positive direction and, if that leaves the
// goal unmatched, the instantiated chase for the refutation direction. A
// non-nil error reports cancellation and nothing else.
func chaseBranch(ctx context.Context, sch *schema.Schema, sigma []*cind.CIND, g *cind.CIND,
	seed instance.Tuple, opts Options) (Verdict, *instance.Database, error) {

	// Universal chase: unbounded fresh variables (N = 0).
	uni := chase.New(sch, nil, sigma, chase.Config{
		N: 0, MaxSteps: opts.ChaseSteps, TableCap: opts.TableCap,
	})
	uni.InsertTuple(g.LHSRel, seed.Clone())
	uniRes := uni.RunContext(ctx)
	if uniRes == chase.Cancelled {
		return Unknown, nil, ctx.Err()
	}
	if uniRes == chase.Fixpoint && seedHasMatch(uni.DB(), g, seed) {
		return Implied, nil, nil
	}

	// Refutation: instantiated chase, then ground and verify.
	inst := chase.New(sch, nil, sigma, chase.Config{
		N: 0, MaxSteps: opts.ChaseSteps, TableCap: opts.TableCap,
		InstantiateFinite: true,
	})
	inst.InsertTuple(g.LHSRel, seed.Clone())
	switch inst.RunContext(ctx) {
	case chase.Fixpoint:
	case chase.Cancelled:
		return Unknown, nil, ctx.Err()
	default:
		return Unknown, nil, nil
	}
	avoid := map[string]bool{}
	for _, c := range constantsOf(sigma, g) {
		avoid[c] = true
	}
	for _, v := range seed {
		if v.IsConst() {
			avoid[v.Str()] = true
		}
	}
	ground, ok := inst.DB().Ground(inst.VarDomain, avoid)
	if !ok {
		return Unknown, nil, nil
	}
	// Belt and braces: the grounded fixpoint must satisfy Σ.
	if !cind.SatisfiedAll(sigma, ground) {
		return Unknown, nil, nil
	}
	if seedViolates(ground, g, seed) {
		return NotImplied, ground, nil
	}
	// The instantiated branch happened to satisfy the goal; the universal
	// branch did not prove it, so this branch stays inconclusive.
	return Unknown, nil, nil
}

// seedHasMatch reports whether the specific seed tuple has the RHS match g
// requires within db.
func seedHasMatch(db *instance.Database, g *cind.CIND, seed instance.Tuple) bool {
	for _, v := range g.Violations(db) {
		if v.T.Eq(seed) {
			return false
		}
	}
	return true
}

// seedViolates reports whether the seed tuple is a g-violation in db.
func seedViolates(db *instance.Database, g *cind.CIND, seed instance.Tuple) bool {
	return !seedHasMatch(db, g, seed)
}

func constantsOf(sigma []*cind.CIND, g *cind.CIND) []string {
	var out []string
	for _, c := range sigma {
		out = append(out, c.Constants()...)
	}
	out = append(out, g.Constants()...)
	return out
}

// MinimalCover removes from sigma every CIND implied by the others — the
// "minimal cover" computation the paper's conclusion lists as the natural
// application of implication analysis. Because implication is undecidable
// to decide exactly in general (and expensive even for pure CINDs), only
// members with a definitive Implied verdict are dropped; the result is
// therefore equivalent to sigma but not necessarily globally minimal.
func MinimalCover(sch *schema.Schema, sigma []*cind.CIND, opts Options) []*cind.CIND {
	out, _ := MinimalCoverContext(context.Background(), sch, sigma, opts)
	return out
}

// MinimalCoverContext is MinimalCover with cooperative cancellation
// threaded into every implication decision. On cancellation it returns
// ctx's error and a nil cover.
func MinimalCoverContext(ctx context.Context, sch *schema.Schema, sigma []*cind.CIND, opts Options) ([]*cind.CIND, error) {
	cover, _, err := MinimalCoverCertified(ctx, sch, sigma, opts)
	return cover, err
}

// Drop records one member MinimalCoverCertified removed: its position in
// the original sigma and the Implied outcome — a proof in the inference
// system or a universal-chase argument over the members remaining at drop
// time — that justified the removal.
type Drop struct {
	Index   int
	Outcome Outcome
}

// MinimalCoverCertified is MinimalCoverContext returning, alongside the
// cover, one certificate per removed member, in original sigma order.
// Members are tracked by position, so a sigma listing the same *CIND
// pointer twice is handled like any other redundancy: one occurrence is
// dropped (the rest implies it), the other judged on its own.
func MinimalCoverCertified(ctx context.Context, sch *schema.Schema, sigma []*cind.CIND, opts Options) ([]*cind.CIND, []Drop, error) {
	type member struct {
		idx int
		psi *cind.CIND
	}
	cur := make([]member, len(sigma))
	for i, psi := range sigma {
		cur[i] = member{i, psi}
	}
	var drops []Drop
	for i := 0; i < len(cur); {
		rest := make([]*cind.CIND, 0, len(cur)-1)
		for j, m := range cur {
			if j != i {
				rest = append(rest, m.psi)
			}
		}
		dec, err := DecideContext(ctx, sch, rest, cur[i].psi, opts)
		if err != nil {
			return nil, nil, err
		}
		if dec.Verdict == Implied {
			drops = append(drops, Drop{Index: cur[i].idx, Outcome: dec})
			cur = append(cur[:i], cur[i+1:]...)
			continue
		}
		i++
	}
	cover := make([]*cind.CIND, len(cur))
	for i, m := range cur {
		cover[i] = m.psi
	}
	return cover, drops, nil
}

// Equivalent reports whether the two sets imply each other, with Unknown
// verdicts treated as failure (conservative).
func Equivalent(sch *schema.Schema, a, b []*cind.CIND, opts Options) bool {
	for _, psi := range a {
		if Decide(sch, b, psi, opts).Verdict != Implied {
			return false
		}
	}
	for _, psi := range b {
		if Decide(sch, a, psi, opts).Verdict != Implied {
			return false
		}
	}
	return true
}
