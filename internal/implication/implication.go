// Package implication decides implication of CINDs: given Σ and ψ, whether
// Σ ⊨ ψ. The problem is PSPACE-complete without finite-domain attributes
// and EXPTIME-complete with them (Theorems 3.4/3.5), so the practical
// decision procedure here is budgeted; within its budget it is sound in
// both directions and returns Unknown when a budget trips.
//
// Two independent engines are combined:
//
//   - the inference system I (package inference), which yields positive
//     answers with a replayable proof (Theorem 3.3: I is sound and
//     complete);
//   - a canonical-database chase: seed a single generic tuple matching ψ's
//     LHS pattern, chase with Σ, and inspect the fixpoint. A fixpoint in
//     which the goal match exists is universal (every model of Σ containing
//     a matching tuple contains a homomorphic image of it), giving Implied;
//     a grounded fixpoint in which the match is absent is itself a model of
//     Σ violating ψ, giving NotImplied with a counterexample database.
//
// Finite-domain attributes are handled by case analysis over their values
// (bounded by Options.MaxValuations) — the source of the EXPTIME lower
// bound, and the reason the budget exists.
package implication

import (
	"fmt"

	"cind/internal/chase"
	cind "cind/internal/core"
	"cind/internal/inference"
	"cind/internal/instance"
	"cind/internal/schema"
	"cind/internal/types"
)

// Verdict is the outcome of an implication check.
type Verdict int

const (
	// Implied: Σ ⊨ ψ, with a proof or a universal chase argument.
	Implied Verdict = iota
	// NotImplied: a counterexample database satisfies Σ but violates ψ.
	NotImplied
	// Unknown: budgets exhausted before either certificate was found.
	Unknown
)

func (v Verdict) String() string {
	switch v {
	case Implied:
		return "implied"
	case NotImplied:
		return "not-implied"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Outcome carries the verdict and its certificate.
type Outcome struct {
	Verdict Verdict
	// Proof is set when the verdict came from the inference system.
	Proof *inference.Proof
	// Counterexample is a ground database satisfying Σ and violating ψ,
	// set on NotImplied.
	Counterexample *instance.Database
	// Reason is a one-line human explanation.
	Reason string
}

// Options budgets the decision procedure. Zero values give workable
// defaults.
type Options struct {
	Inference     inference.Options
	ChaseSteps    int // per-branch chase step cap (default 20000)
	TableCap      int // per-branch table cap (default 1000)
	MaxValuations int // finite-domain case-split cap (default 64)
}

func (o Options) withDefaults() Options {
	if o.ChaseSteps == 0 {
		o.ChaseSteps = 20000
	}
	if o.TableCap == 0 {
		o.TableCap = 1000
	}
	if o.MaxValuations == 0 {
		o.MaxValuations = 64
	}
	return o
}

// Decide determines whether sigma ⊨ psi.
func Decide(sch *schema.Schema, sigma []*cind.CIND, psi *cind.CIND, opts Options) Outcome {
	opts = opts.withDefaults()

	// Fast path and positive certificate: the inference system.
	if proof, ok := inference.Derive(sch, sigma, psi, opts.Inference); ok {
		return Outcome{Verdict: Implied, Proof: proof, Reason: "derived in inference system I"}
	}

	// Chase every normal-form component of the goal.
	goals := cind.NormalizeAll([]*cind.CIND{psi})
	allImplied := true
	for _, g := range goals {
		out := decideComponent(sch, sigma, g, opts)
		switch out.Verdict {
		case NotImplied:
			return out
		case Unknown:
			allImplied = false
		}
	}
	if allImplied {
		return Outcome{Verdict: Implied, Reason: "universal chase contains the required match in every branch"}
	}
	return Outcome{Verdict: Unknown, Reason: "budgets exhausted before a certificate was found"}
}

// decideComponent runs the canonical-database analysis for one normal-form
// goal component.
func decideComponent(sch *schema.Schema, sigma []*cind.CIND, g *cind.CIND, opts Options) Outcome {
	rel := sch.MustRelationByName(g.LHSRel)

	// Identify the seed tuple's fixed and enumerated positions.
	xpIdx := map[string]string{} // attr -> constant from g's Xp
	xpPat := g.XpPattern()
	for i, a := range g.Xp {
		xpIdx[a] = xpPat[i].Const()
	}

	var enums []enumAttr
	seedBase := make(instance.Tuple, rel.Arity())
	frozen := 0
	for j, a := range rel.Attrs() {
		if c, ok := xpIdx[a.Name]; ok {
			seedBase[j] = types.C(c)
			continue
		}
		if a.Dom.IsFinite() {
			enums = append(enums, enumAttr{pos: j, vals: a.Dom.Values()})
			continue
		}
		frozen++
		seedBase[j] = types.C(fmt.Sprintf("⊥seed%d", frozen))
	}

	// Enumerate finite-domain valuations of the seed, up to the cap.
	total := 1
	for _, e := range enums {
		total *= len(e.vals)
		if total > opts.MaxValuations {
			break
		}
	}
	capped := total > opts.MaxValuations

	branchImplied := 0
	branches := 0
	var counter *instance.Database
	enumerate(enums, seedBase, func(seed instance.Tuple) bool {
		branches++
		if branches > opts.MaxValuations {
			return false
		}
		verdict, cex := chaseBranch(sch, sigma, g, seed, opts)
		switch verdict {
		case Implied:
			branchImplied++
		case NotImplied:
			counter = cex
			return false
		}
		return true
	})

	if counter != nil {
		return Outcome{
			Verdict:        NotImplied,
			Counterexample: counter,
			Reason:         "chase fixpoint is a model of Σ violating ψ",
		}
	}
	if !capped && branchImplied == branches {
		return Outcome{Verdict: Implied, Reason: "all canonical branches contain the required match"}
	}
	return Outcome{Verdict: Unknown, Reason: "some chase branch was inconclusive"}
}

// enumAttr is a seed-tuple position whose finite domain is enumerated.
type enumAttr struct {
	pos  int
	vals []string
}

// enumerate calls visit for every combination of the enumerated attribute
// values layered over base. visit returning false stops the enumeration.
func enumerate(enums []enumAttr, base instance.Tuple, visit func(instance.Tuple) bool) {
	var rec func(i int, cur instance.Tuple) bool
	rec = func(i int, cur instance.Tuple) bool {
		if i == len(enums) {
			return visit(cur.Clone())
		}
		for _, v := range enums[i].vals {
			cur[enums[i].pos] = types.C(v)
			if !rec(i+1, cur) {
				return false
			}
		}
		return true
	}
	rec(0, base.Clone())
}

// chaseBranch analyses one canonical seed: it runs the universal
// (fresh-variable) chase for the positive direction and, if that leaves the
// goal unmatched, the instantiated chase for the refutation direction.
func chaseBranch(sch *schema.Schema, sigma []*cind.CIND, g *cind.CIND,
	seed instance.Tuple, opts Options) (Verdict, *instance.Database) {

	// Universal chase: unbounded fresh variables (N = 0).
	uni := chase.New(sch, nil, sigma, chase.Config{
		N: 0, MaxSteps: opts.ChaseSteps, TableCap: opts.TableCap,
	})
	uni.InsertTuple(g.LHSRel, seed.Clone())
	uniRes := uni.Run()
	if uniRes == chase.Fixpoint && seedHasMatch(uni.DB(), g, seed) {
		return Implied, nil
	}

	// Refutation: instantiated chase, then ground and verify.
	inst := chase.New(sch, nil, sigma, chase.Config{
		N: 0, MaxSteps: opts.ChaseSteps, TableCap: opts.TableCap,
		InstantiateFinite: true,
	})
	inst.InsertTuple(g.LHSRel, seed.Clone())
	if inst.Run() != chase.Fixpoint {
		return Unknown, nil
	}
	avoid := map[string]bool{}
	for _, c := range constantsOf(sigma, g) {
		avoid[c] = true
	}
	for _, v := range seed {
		if v.IsConst() {
			avoid[v.Str()] = true
		}
	}
	ground, ok := inst.DB().Ground(inst.VarDomain, avoid)
	if !ok {
		return Unknown, nil
	}
	// Belt and braces: the grounded fixpoint must satisfy Σ.
	if !cind.SatisfiedAll(sigma, ground) {
		return Unknown, nil
	}
	if seedViolates(ground, g, seed) {
		return NotImplied, ground
	}
	// The instantiated branch happened to satisfy the goal; the universal
	// branch did not prove it, so this branch stays inconclusive.
	return Unknown, nil
}

// seedHasMatch reports whether the specific seed tuple has the RHS match g
// requires within db.
func seedHasMatch(db *instance.Database, g *cind.CIND, seed instance.Tuple) bool {
	for _, v := range g.Violations(db) {
		if v.T.Eq(seed) {
			return false
		}
	}
	return true
}

// seedViolates reports whether the seed tuple is a g-violation in db.
func seedViolates(db *instance.Database, g *cind.CIND, seed instance.Tuple) bool {
	return !seedHasMatch(db, g, seed)
}

func constantsOf(sigma []*cind.CIND, g *cind.CIND) []string {
	var out []string
	for _, c := range sigma {
		out = append(out, c.Constants()...)
	}
	out = append(out, g.Constants()...)
	return out
}

// MinimalCover removes from sigma every CIND implied by the others — the
// "minimal cover" computation the paper's conclusion lists as the natural
// application of implication analysis. Because implication is undecidable
// to decide exactly in general (and expensive even for pure CINDs), only
// members with a definitive Implied verdict are dropped; the result is
// therefore equivalent to sigma but not necessarily globally minimal.
func MinimalCover(sch *schema.Schema, sigma []*cind.CIND, opts Options) []*cind.CIND {
	out := append([]*cind.CIND(nil), sigma...)
	for i := 0; i < len(out); {
		rest := make([]*cind.CIND, 0, len(out)-1)
		rest = append(rest, out[:i]...)
		rest = append(rest, out[i+1:]...)
		if Decide(sch, rest, out[i], opts).Verdict == Implied {
			out = rest
			continue
		}
		i++
	}
	return out
}

// Equivalent reports whether the two sets imply each other, with Unknown
// verdicts treated as failure (conservative).
func Equivalent(sch *schema.Schema, a, b []*cind.CIND, opts Options) bool {
	for _, psi := range a {
		if Decide(sch, b, psi, opts).Verdict != Implied {
			return false
		}
	}
	for _, psi := range b {
		if Decide(sch, a, psi, opts).Verdict != Implied {
			return false
		}
	}
	return true
}
