package implication

import (
	"testing"

	cind "cind/internal/core"
	"cind/internal/gen"
	"cind/internal/inference"
	"cind/internal/schema"
)

// TestMembersAlwaysImplied: Σ ⊨ ψ for every ψ ∈ Σ, across random CIND
// workloads — a completeness smoke test for the cheap path of Decide.
func TestMembersAlwaysImplied(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		w := gen.New(gen.Config{
			Relations: 4, MaxAttrs: 5, F: 0.3, Card: 16,
			CFDRatio: 0.01, Seed: seed,
		})
		for _, psi := range w.CINDs {
			out := Decide(w.Schema, w.CINDs, psi, Options{})
			if out.Verdict != Implied {
				t.Fatalf("seed %d: member %v: verdict %v (%s)", seed, psi, out.Verdict, out.Reason)
			}
		}
	}
}

// TestImpliedNeverViolatedOnWitness: soundness cross-check — when Decide
// answers Implied for a projection-weakened member, the Theorem 3.2
// witness for Σ (which satisfies Σ) must satisfy the goal too.
func TestImpliedNeverViolatedOnWitness(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		w := gen.New(gen.Config{
			Relations: 4, MaxAttrs: 5, F: 0.3, Card: 16,
			CFDRatio: 0.01, Seed: seed,
		})
		db, err := cind.Witness(w.Schema, w.CINDs, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		goals := projectionGoals(t, w.Schema, w.CINDs)
		for _, g := range goals {
			out := Decide(w.Schema, w.CINDs, g, Options{})
			if out.Verdict == Implied && !g.Satisfied(db) {
				t.Fatalf("seed %d: %v declared implied but violated on a Σ-model", seed, g)
			}
			if out.Verdict == NotImplied {
				if out.Counterexample == nil {
					t.Fatalf("seed %d: NotImplied without counterexample", seed)
				}
				if !cind.SatisfiedAll(w.CINDs, out.Counterexample) || g.Satisfied(out.Counterexample) {
					t.Fatalf("seed %d: counterexample for %v is not separating", seed, g)
				}
			}
		}
	}
}

// projectionGoals derives CIND2-weakened goals (drop one embedded pair)
// from the first few members — all of them implied by construction, so
// they exercise the positive path beyond verbatim membership.
func projectionGoals(t *testing.T, sch *schema.Schema, sigma []*cind.CIND) []*cind.CIND {
	t.Helper()
	var out []*cind.CIND
	for _, psi := range cind.NormalizeAll(sigma) {
		if len(psi.X) == 0 {
			continue
		}
		idx := make([]int, 0, len(psi.X)-1)
		for i := 1; i < len(psi.X); i++ {
			idx = append(idx, i)
		}
		g, err := inference.ProjectPermute(sch, psi.ID+"-proj", psi, idx, nil, nil)
		if err != nil {
			continue
		}
		out = append(out, g)
		if len(out) >= 4 {
			break
		}
	}
	return out
}

// TestProjectionGoalsImplied: those weakened goals are in fact implied.
func TestProjectionGoalsImplied(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		w := gen.New(gen.Config{
			Relations: 4, MaxAttrs: 5, F: 0.3, Card: 16,
			CFDRatio: 0.01, Seed: seed,
		})
		for _, g := range projectionGoals(t, w.Schema, w.CINDs) {
			out := Decide(w.Schema, w.CINDs, g, Options{})
			if out.Verdict != Implied {
				t.Fatalf("seed %d: projection %v of a member: verdict %v (%s)",
					seed, g, out.Verdict, out.Reason)
			}
		}
	}
}
