// Package fd implements traditional functional dependencies — the baseline
// that CFDs extend (Section 1 of the paper). It provides attribute-set
// closure under Armstrong's axioms, the implication test, and minimal
// covers. CFD reasoning reuses the closure; the examples use FDs fd1–fd3 of
// the paper directly.
package fd

import (
	"fmt"
	"sort"
	"strings"
)

// FD is a functional dependency R: X → Y over a single relation. The
// relation name is carried so mixed sets over multiple relations can be
// partitioned; implication is always per-relation.
type FD struct {
	Rel string
	X   []string // determinant
	Y   []string // dependent
}

// New builds an FD with defensively copied attribute lists.
func New(rel string, x, y []string) FD {
	return FD{Rel: rel, X: append([]string(nil), x...), Y: append([]string(nil), y...)}
}

// String renders "R: A, B -> C".
func (f FD) String() string {
	return fmt.Sprintf("%s: %s -> %s", f.Rel, strings.Join(f.X, ", "), strings.Join(f.Y, ", "))
}

// attrSet is a set of attribute names.
type attrSet map[string]bool

func newSet(attrs []string) attrSet {
	s := make(attrSet, len(attrs))
	for _, a := range attrs {
		s[a] = true
	}
	return s
}

func (s attrSet) containsAll(attrs []string) bool {
	for _, a := range attrs {
		if !s[a] {
			return false
		}
	}
	return true
}

func (s attrSet) sorted() []string {
	out := make([]string, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Closure computes the attribute closure X⁺ of attrs under the FDs of rel in
// fds, using the standard fixpoint algorithm. FDs on other relations are
// ignored.
func Closure(rel string, attrs []string, fds []FD) []string {
	closed := newSet(attrs)
	for changed := true; changed; {
		changed = false
		for _, f := range fds {
			if f.Rel != rel {
				continue
			}
			if closed.containsAll(f.X) {
				for _, a := range f.Y {
					if !closed[a] {
						closed[a] = true
						changed = true
					}
				}
			}
		}
	}
	return closed.sorted()
}

// Implies reports whether fds ⊨ target, by the closure test: target.X⁺ must
// contain target.Y. Sound and complete for traditional FDs.
func Implies(fds []FD, target FD) bool {
	closed := newSet(Closure(target.Rel, target.X, fds))
	return closed.containsAll(target.Y)
}

// Equivalent reports whether two FD sets imply each other.
func Equivalent(a, b []FD) bool {
	for _, f := range a {
		if !Implies(b, f) {
			return false
		}
	}
	for _, f := range b {
		if !Implies(a, f) {
			return false
		}
	}
	return true
}

// MinimalCover computes a minimal cover of fds: singleton right-hand sides,
// no redundant FDs, no extraneous left-hand-side attributes. The result is
// equivalent to the input. This is the classical algorithm the paper's
// future-work section ("minimal cover of a given set Σ") builds on for
// conditional dependencies.
func MinimalCover(fds []FD) []FD {
	// 1. Split right-hand sides.
	var work []FD
	for _, f := range fds {
		for _, y := range f.Y {
			work = append(work, New(f.Rel, f.X, []string{y}))
		}
	}
	// 2. Remove extraneous LHS attributes.
	for i := range work {
		f := work[i]
		for len(f.X) > 1 {
			removed := false
			for j := range f.X {
				reduced := make([]string, 0, len(f.X)-1)
				reduced = append(reduced, f.X[:j]...)
				reduced = append(reduced, f.X[j+1:]...)
				if Implies(work, New(f.Rel, reduced, f.Y)) {
					f = New(f.Rel, reduced, f.Y)
					work[i] = f
					removed = true
					break
				}
			}
			if !removed {
				break
			}
		}
	}
	// 3. Remove redundant FDs.
	for i := 0; i < len(work); {
		rest := make([]FD, 0, len(work)-1)
		rest = append(rest, work[:i]...)
		rest = append(rest, work[i+1:]...)
		if Implies(rest, work[i]) {
			work = rest
			continue
		}
		i++
	}
	return work
}

// IsKey reports whether attrs functionally determine every attribute of
// allAttrs under fds — i.e. whether attrs is a superkey of rel.
func IsKey(rel string, attrs, allAttrs []string, fds []FD) bool {
	return newSet(Closure(rel, attrs, fds)).containsAll(allAttrs)
}
