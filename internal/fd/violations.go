package fd

import (
	"fmt"

	"cind/internal/instance"
	"cind/internal/types"
)

// Violation records one witness of FD failure: a pair of distinct tuples
// agreeing on X but not on Y. Unlike CFDs, a traditional FD cannot be
// violated by a single tuple.
type Violation struct {
	FD     FD
	T1, T2 instance.Tuple
}

// String explains the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s violates %s: %v, %v", v.FD.Rel, v.FD, v.T1, v.T2)
}

// Violations returns every violating pair of the FD in the database, in
// deterministic order: X groups in first-seen order, and within a group
// pairs (i < j) in insertion order. This is the plain-FD reference
// semantics that CFDs with an all-wildcard tableau (cfd.LiftFD) must
// reproduce — the equivalence the lift tests assert against the batched
// detection engine.
func Violations(db *instance.Database, f FD) []Violation {
	in := db.Instance(f.Rel)
	rel := in.Relation()
	xi, yi := rel.Cols(f.X), rel.Cols(f.Y)
	groups := map[string][]instance.Tuple{}
	var order []string
	for _, t := range in.Tuples() {
		k := projKey(t.Project(xi))
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], t)
	}
	var out []Violation
	for _, k := range order {
		group := groups[k]
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				if projKey(group[i].Project(yi)) != projKey(group[j].Project(yi)) {
					out = append(out, Violation{FD: f, T1: group[i], T2: group[j]})
				}
			}
		}
	}
	return out
}

// Satisfied reports whether the database satisfies the FD.
func Satisfied(db *instance.Database, f FD) bool { return len(Violations(db, f)) == 0 }

// projKey encodes a projection through the shared tuple-identity encoder,
// so this reference semantics can never diverge from the engine's hashing.
func projKey(vals []types.Value) string { return types.TupleKey(vals) }
