package fd

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestClosureTextbook(t *testing.T) {
	// Classic example: R(A,B,C,D,E) with A→B, B→C, CD→E.
	fds := []FD{
		New("R", []string{"A"}, []string{"B"}),
		New("R", []string{"B"}, []string{"C"}),
		New("R", []string{"C", "D"}, []string{"E"}),
	}
	got := Closure("R", []string{"A"}, fds)
	if strings.Join(got, ",") != "A,B,C" {
		t.Fatalf("A+ = %v", got)
	}
	got = Closure("R", []string{"A", "D"}, fds)
	if strings.Join(got, ",") != "A,B,C,D,E" {
		t.Fatalf("AD+ = %v", got)
	}
}

func TestClosureIgnoresOtherRelations(t *testing.T) {
	fds := []FD{New("S", []string{"A"}, []string{"B"})}
	got := Closure("R", []string{"A"}, fds)
	if strings.Join(got, ",") != "A" {
		t.Fatalf("closure must ignore other relations, got %v", got)
	}
}

func TestImplies(t *testing.T) {
	fds := []FD{
		New("R", []string{"A"}, []string{"B"}),
		New("R", []string{"B"}, []string{"C"}),
	}
	if !Implies(fds, New("R", []string{"A"}, []string{"C"})) {
		t.Fatal("transitivity must be derived")
	}
	if !Implies(fds, New("R", []string{"A", "C"}, []string{"B"})) {
		t.Fatal("augmentation must be derived")
	}
	if Implies(fds, New("R", []string{"C"}, []string{"A"})) {
		t.Fatal("reverse direction must not be derived")
	}
	if !Implies(nil, New("R", []string{"A"}, []string{"A"})) {
		t.Fatal("reflexivity holds from the empty set")
	}
}

func TestPaperFDs(t *testing.T) {
	// fd1: saving(an, ab → cn, ca, cp); with fd1, (an, ab) is a key of
	// saving(an, cn, ca, cp, ab) — the paper's reading of fd1.
	fd1 := New("saving", []string{"an", "ab"}, []string{"cn", "ca", "cp"})
	all := []string{"an", "cn", "ca", "cp", "ab"}
	if !IsKey("saving", []string{"an", "ab"}, all, []FD{fd1}) {
		t.Fatal("an,ab must be a key for saving under fd1")
	}
	if IsKey("saving", []string{"an"}, all, []FD{fd1}) {
		t.Fatal("an alone is not a key")
	}
}

func TestMinimalCoverRemovesRedundancy(t *testing.T) {
	fds := []FD{
		New("R", []string{"A"}, []string{"B"}),
		New("R", []string{"B"}, []string{"C"}),
		New("R", []string{"A"}, []string{"C"}), // redundant
	}
	mc := MinimalCover(fds)
	if len(mc) != 2 {
		t.Fatalf("minimal cover size = %d (%v)", len(mc), mc)
	}
	if !Equivalent(fds, mc) {
		t.Fatal("minimal cover must be equivalent to the input")
	}
}

func TestMinimalCoverTrimsLHS(t *testing.T) {
	fds := []FD{
		New("R", []string{"A"}, []string{"B"}),
		New("R", []string{"A", "B"}, []string{"C"}), // B extraneous
	}
	mc := MinimalCover(fds)
	for _, f := range mc {
		if len(f.Y) != 1 {
			t.Fatalf("cover must have singleton RHS: %v", f)
		}
		if strings.Join(f.X, ",") == "A,B" {
			t.Fatalf("extraneous attribute not removed: %v", f)
		}
	}
	if !Equivalent(fds, mc) {
		t.Fatal("cover not equivalent")
	}
}

func TestMinimalCoverSplitsRHS(t *testing.T) {
	fds := []FD{New("R", []string{"A"}, []string{"B", "C"})}
	mc := MinimalCover(fds)
	if len(mc) != 2 {
		t.Fatalf("cover = %v", mc)
	}
	if !Equivalent(fds, mc) {
		t.Fatal("cover not equivalent")
	}
}

// TestMinimalCoverEquivalentRandom property-checks cover equivalence on
// random FD sets over a small attribute universe.
func TestMinimalCoverEquivalentRandom(t *testing.T) {
	attrs := []string{"A", "B", "C", "D", "E"}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var fds []FD
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			x := randSubset(rng, attrs, 1+rng.Intn(3))
			y := randSubset(rng, attrs, 1+rng.Intn(2))
			fds = append(fds, New("R", x, y))
		}
		mc := MinimalCover(fds)
		if !Equivalent(fds, mc) {
			t.Fatalf("trial %d: cover %v not equivalent to %v", trial, mc, fds)
		}
		for _, f := range mc {
			if len(f.Y) != 1 {
				t.Fatalf("trial %d: non-singleton RHS %v", trial, f)
			}
		}
	}
}

// TestImpliesAgreesWithModelCheck cross-validates Implies against a brute
// force semantic check over all two-tuple instances with a tiny domain.
// Two-tuple instances suffice: an FD violation is witnessed by two tuples.
func TestImpliesAgreesWithModelCheck(t *testing.T) {
	attrs := []string{"A", "B", "C"}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		var fds []FD
		for i := 0; i < 1+rng.Intn(3); i++ {
			fds = append(fds, New("R", randSubset(rng, attrs, 1+rng.Intn(2)), randSubset(rng, attrs, 1)))
		}
		target := New("R", randSubset(rng, attrs, 1+rng.Intn(2)), randSubset(rng, attrs, 1))
		want := semanticImplies(fds, target, attrs)
		if got := Implies(fds, target); got != want {
			t.Fatalf("trial %d: Implies(%v, %v) = %v, semantic = %v", trial, fds, target, got, want)
		}
	}
}

// semanticImplies enumerates all pairs of tuples over {0,1} per attribute and
// checks that every pair satisfying fds satisfies target.
func semanticImplies(fds []FD, target FD, attrs []string) bool {
	n := len(attrs)
	idx := map[string]int{}
	for i, a := range attrs {
		idx[a] = i
	}
	total := 1
	for i := 0; i < n; i++ {
		total *= 2
	}
	sat := func(t1, t2 []int, f FD) bool {
		for _, a := range f.X {
			if t1[idx[a]] != t2[idx[a]] {
				return true
			}
		}
		for _, a := range f.Y {
			if t1[idx[a]] != t2[idx[a]] {
				return false
			}
		}
		return true
	}
	decode := func(code int) []int {
		t := make([]int, n)
		for i := 0; i < n; i++ {
			t[i] = (code >> i) & 1
		}
		return t
	}
	for c1 := 0; c1 < total; c1++ {
		for c2 := 0; c2 < total; c2++ {
			t1, t2 := decode(c1), decode(c2)
			ok := true
			for _, f := range fds {
				if !sat(t1, t2, f) {
					ok = false
					break
				}
			}
			if ok && !sat(t1, t2, target) {
				return false
			}
		}
	}
	return true
}

func randSubset(rng *rand.Rand, attrs []string, k int) []string {
	perm := rng.Perm(len(attrs))
	if k > len(attrs) {
		k = len(attrs)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = attrs[perm[i]]
	}
	sort.Strings(out)
	return out
}

func TestString(t *testing.T) {
	f := New("R", []string{"A", "B"}, []string{"C"})
	if f.String() != "R: A, B -> C" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestNewCopiesSlices(t *testing.T) {
	x := []string{"A"}
	f := New("R", x, x)
	x[0] = "Z"
	if f.X[0] != "A" || f.Y[0] != "A" {
		t.Fatal("New must defensively copy")
	}
}
