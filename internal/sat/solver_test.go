package sat

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func TestEmptyFormulaSat(t *testing.T) {
	f := NewFormula(3)
	a, ok := Solve(f)
	if !ok {
		t.Fatal("empty formula is satisfiable")
	}
	if !Verify(f, a) {
		t.Fatal("assignment must verify")
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	f := NewFormula(1)
	f.Clauses = append(f.Clauses, Clause{})
	if _, ok := Solve(f); ok {
		t.Fatal("empty clause is unsatisfiable")
	}
}

func TestUnitPropagationChain(t *testing.T) {
	// 1; ¬1∨2; ¬2∨3 forces all true.
	f := NewFormula(3)
	f.AddClause(1)
	f.AddClause(-1, 2)
	f.AddClause(-2, 3)
	a, ok := Solve(f)
	if !ok {
		t.Fatal("must be sat")
	}
	for v := 1; v <= 3; v++ {
		if !a[v] {
			t.Fatalf("var %d must be true", v)
		}
	}
}

func TestSimpleUnsat(t *testing.T) {
	// (1)(−1) contradicts.
	f := NewFormula(1)
	f.AddClause(1)
	f.AddClause(-1)
	if _, ok := Solve(f); ok {
		t.Fatal("must be unsat")
	}
}

func TestPigeonhole3x2Unsat(t *testing.T) {
	// 3 pigeons, 2 holes: var p*2+h+1 means pigeon p in hole h.
	f := NewFormula(6)
	lit := func(p, h int) Literal { return Literal(p*2 + h + 1) }
	for p := 0; p < 3; p++ {
		f.AddClause(lit(p, 0), lit(p, 1))
	}
	for h := 0; h < 2; h++ {
		for p1 := 0; p1 < 3; p1++ {
			for p2 := p1 + 1; p2 < 3; p2++ {
				f.AddClause(lit(p1, h).Neg(), lit(p2, h).Neg())
			}
		}
	}
	if _, ok := Solve(f); ok {
		t.Fatal("pigeonhole must be unsat")
	}
}

func TestExactlyOne(t *testing.T) {
	f := NewFormula(3)
	f.AddExactlyOne(1, 2, 3)
	f.AddClause(-2)
	f.AddClause(-3)
	a, ok := Solve(f)
	if !ok {
		t.Fatal("must be sat with var 1 true")
	}
	if !a[1] || a[2] || a[3] {
		t.Fatalf("assignment = %v", a)
	}
	f.AddClause(-1)
	if _, ok := Solve(f); ok {
		t.Fatal("all-negated exactly-one must be unsat")
	}
}

func TestAddExactlyOneEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	NewFormula(1).AddExactlyOne()
}

func TestAddClauseValidation(t *testing.T) {
	f := NewFormula(2)
	for _, bad := range []Literal{0, 3, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("literal %d must panic", bad)
				}
			}()
			f.AddClause(bad)
		}()
	}
}

func TestLiteralOps(t *testing.T) {
	l := Literal(-4)
	if l.Var() != 4 || l.Pos() {
		t.Fatal("negative literal misread")
	}
	if l.Neg() != Literal(4) {
		t.Fatal("negation wrong")
	}
}

// bruteForce decides satisfiability by enumeration, for cross-validation.
func bruteForce(f *Formula) bool {
	n := f.NumVars
	for code := 0; code < 1<<n; code++ {
		a := make(Assignment, n+1)
		for v := 1; v <= n; v++ {
			a[v] = (code>>(v-1))&1 == 1
		}
		if Verify(f, a) {
			return true
		}
	}
	return false
}

// TestAgainstBruteForce cross-checks DPLL against enumeration on random
// 3-CNF formulas over ≤ 8 variables, around the sat/unsat threshold.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(7)
		m := 1 + rng.Intn(4*n)
		f := NewFormula(n)
		for c := 0; c < m; c++ {
			width := 1 + rng.Intn(3)
			cl := make(Clause, 0, width)
			for i := 0; i < width; i++ {
				v := 1 + rng.Intn(n)
				l := Literal(v)
				if rng.Intn(2) == 0 {
					l = -l
				}
				cl = append(cl, l)
			}
			f.Clauses = append(f.Clauses, cl)
		}
		a, got := Solve(f)
		want := bruteForce(f)
		if got != want {
			t.Fatalf("trial %d: Solve=%v bruteForce=%v formula=%v", trial, got, want, f.Clauses)
		}
		if got && !Verify(f, a) {
			t.Fatalf("trial %d: returned assignment does not verify", trial)
		}
	}
}

func TestVerifyRejectsWrongLength(t *testing.T) {
	f := NewFormula(2)
	if Verify(f, make(Assignment, 1)) {
		t.Fatal("short assignment must not verify")
	}
}

func BenchmarkSolveRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 60
	f := NewFormula(n)
	for c := 0; c < int(3.5*float64(n)); c++ {
		cl := make(Clause, 3)
		for i := range cl {
			v := 1 + rng.Intn(n)
			l := Literal(v)
			if rng.Intn(2) == 0 {
				l = -l
			}
			cl[i] = l
		}
		f.Clauses = append(f.Clauses, cl)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(f)
	}
}

// TestSolveContextPreCancelled: an already-cancelled context never starts
// the search.
func TestSolveContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := NewFormula(1)
	f.AddClause(1)
	if a, ok, err := SolveContext(ctx, f); err != context.Canceled || ok || a != nil {
		t.Fatalf("SolveContext(cancelled) = (%v, %v, %v), want (nil, false, Canceled)", a, ok, err)
	}
}

// TestSolveContextCancelMidSearch cancels an exponential pigeonhole search
// partway: the decision loop must observe the cancellation and stop instead
// of completing the backtrack.
func TestSolveContextCancelMidSearch(t *testing.T) {
	// PHP(n+1, n): n+1 pigeons in n holes — unsatisfiable, and famously
	// exponential for DPLL without cutting planes.
	n := 12
	varOf := func(p, h int) Literal { return Literal(p*n + h + 1) }
	f := NewFormula((n + 1) * n)
	for p := 0; p <= n; p++ {
		cl := make(Clause, n)
		for h := 0; h < n; h++ {
			cl[h] = varOf(p, h)
		}
		f.Clauses = append(f.Clauses, cl)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				f.AddClause(-varOf(p1, h), -varOf(p2, h))
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	type out struct {
		ok  bool
		err error
	}
	done := make(chan out, 1)
	go func() {
		_, ok, err := SolveContext(ctx, f)
		done <- out{ok, err}
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case o := <-done:
		if o.err != context.Canceled || o.ok {
			t.Fatalf("SolveContext = (ok=%v, err=%v), want (false, Canceled)", o.ok, o.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("solver did not observe cancellation")
	}
}
