// Package sat is a complete Boolean satisfiability solver used by the
// SAT-based implementation of CFD_Checking (Section 5.2 of the paper, which
// used SAT4j [19]). It is a DPLL solver with unit propagation, pure-literal
// elimination at the root, and an activity-guided branching heuristic —
// deliberately simple, entirely stdlib, and complete, which is all the
// experiment requires.
package sat

import (
	"context"
	"fmt"
)

// Literal encodes a propositional literal: variable v (1-based) is the
// positive literal Literal(v) and its negation Literal(-v). Zero is invalid.
type Literal int

// Var returns the literal's variable (1-based).
func (l Literal) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Pos reports whether the literal is positive.
func (l Literal) Pos() bool { return l > 0 }

// Neg returns the complementary literal.
func (l Literal) Neg() Literal { return -l }

// Clause is a disjunction of literals.
type Clause []Literal

// Formula is a CNF formula over variables 1..NumVars.
type Formula struct {
	NumVars int
	Clauses []Clause
}

// NewFormula returns an empty formula over n variables.
func NewFormula(n int) *Formula { return &Formula{NumVars: n} }

// AddClause appends a clause, validating its literals.
func (f *Formula) AddClause(lits ...Literal) {
	for _, l := range lits {
		if l == 0 || l.Var() > f.NumVars {
			panic(fmt.Sprintf("sat: literal %d out of range (NumVars=%d)", l, f.NumVars))
		}
	}
	f.Clauses = append(f.Clauses, Clause(lits))
}

// AddExactlyOne adds clauses forcing exactly one of the literals true:
// one at-least-one clause plus pairwise at-most-one clauses. The pairwise
// encoding is quadratic but the CFD encoding only applies it to per-attribute
// candidate sets, which are small.
func (f *Formula) AddExactlyOne(lits ...Literal) {
	if len(lits) == 0 {
		panic("sat: AddExactlyOne of nothing is unsatisfiable by construction")
	}
	f.AddClause(lits...)
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			f.AddClause(lits[i].Neg(), lits[j].Neg())
		}
	}
}

// Assignment maps variable (1-based) to truth value. Index 0 is unused.
type Assignment []bool

// Value returns the assigned value of a literal.
func (a Assignment) Value(l Literal) bool {
	v := a[l.Var()]
	if l.Pos() {
		return v
	}
	return !v
}

const (
	unassigned int8 = iota
	assignedTrue
	assignedFalse
)

// Solver holds the DPLL search state for one Solve call.
type solver struct {
	f      *Formula
	assign []int8 // per variable
	act    []int  // branching activity: occurrence counts
	trail  []int  // assigned variables in order, for backtracking
	steps  int    // propagation step counter (statistics)

	// done is the context's cancellation channel (nil when the caller
	// cannot cancel); cancelled latches once the decision loop observes it.
	done      <-chan struct{}
	cancelled bool
}

// Solve decides satisfiability of f. On success it returns a satisfying
// assignment; on failure it returns nil, false. Solve is deterministic.
func Solve(f *Formula) (Assignment, bool) {
	a, ok, _ := SolveContext(context.Background(), f)
	return a, ok
}

// SolveContext is Solve with cooperative cancellation: the DPLL decision
// loop polls ctx at every branching decision, so a cancelled solve abandons
// the search promptly instead of completing an exponential backtrack. On
// cancellation it returns (nil, false, ctx.Err()); a nil error means the
// (deterministic) search genuinely completed.
func SolveContext(ctx context.Context, f *Formula) (Assignment, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	s := &solver{
		f:      f,
		assign: make([]int8, f.NumVars+1),
		act:    make([]int, f.NumVars+1),
		done:   ctx.Done(),
	}
	for _, c := range f.Clauses {
		if len(c) == 0 {
			return nil, false, nil
		}
		for _, l := range c {
			s.act[l.Var()]++
		}
	}
	if !s.dpll() {
		if s.cancelled {
			return nil, false, ctx.Err()
		}
		return nil, false, nil
	}
	out := make(Assignment, f.NumVars+1)
	for v := 1; v <= f.NumVars; v++ {
		out[v] = s.assign[v] == assignedTrue
	}
	return out, true, nil
}

// stopped polls the cancellation channel, latching the result.
func (s *solver) stopped() bool {
	if s.cancelled {
		return true
	}
	if s.done == nil {
		return false
	}
	select {
	case <-s.done:
		s.cancelled = true
		return true
	default:
		return false
	}
}

// litVal evaluates a literal under the current partial assignment:
// +1 true, -1 false, 0 unassigned.
func (s *solver) litVal(l Literal) int {
	a := s.assign[l.Var()]
	if a == unassigned {
		return 0
	}
	t := a == assignedTrue
	if !l.Pos() {
		t = !t
	}
	if t {
		return 1
	}
	return -1
}

func (s *solver) set(l Literal) {
	v := l.Var()
	if l.Pos() {
		s.assign[v] = assignedTrue
	} else {
		s.assign[v] = assignedFalse
	}
	s.trail = append(s.trail, v)
}

// propagate applies unit propagation to fixpoint. It returns false on
// conflict (an all-false clause).
func (s *solver) propagate() bool {
	for changed := true; changed; {
		changed = false
		for _, c := range s.f.Clauses {
			s.steps++
			var unit Literal
			unset, satisfied := 0, false
			for _, l := range c {
				switch s.litVal(l) {
				case 1:
					satisfied = true
				case 0:
					unset++
					unit = l
				}
				if satisfied || unset > 1 {
					break
				}
			}
			if satisfied || unset > 1 {
				continue
			}
			if unset == 0 {
				return false // conflict
			}
			s.set(unit)
			changed = true
		}
	}
	return true
}

// pickBranch returns the unassigned variable with the highest activity,
// or 0 when all variables are assigned.
func (s *solver) pickBranch() int {
	best, bestAct := 0, -1
	for v := 1; v <= s.f.NumVars; v++ {
		if s.assign[v] == unassigned && s.act[v] > bestAct {
			best, bestAct = v, s.act[v]
		}
	}
	return best
}

func (s *solver) dpll() bool {
	if s.stopped() {
		return false
	}
	mark := len(s.trail)
	if !s.propagate() {
		s.undo(mark)
		return false
	}
	v := s.pickBranch()
	if v == 0 {
		return true // fully assigned, no conflict
	}
	for _, phase := range [2]Literal{Literal(v), Literal(-v)} {
		inner := len(s.trail)
		s.set(phase)
		if s.dpll() {
			return true
		}
		s.undo(inner)
	}
	s.undo(mark)
	return false
}

func (s *solver) undo(mark int) {
	for len(s.trail) > mark {
		v := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.assign[v] = unassigned
	}
}

// Verify reports whether the assignment satisfies the formula — used by
// tests and as a belt-and-braces check by callers that cannot afford a
// wrong "consistent" verdict.
func Verify(f *Formula, a Assignment) bool {
	if len(a) != f.NumVars+1 {
		return false
	}
	for _, c := range f.Clauses {
		ok := false
		for _, l := range c {
			if a.Value(l) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
