// Package bank reconstructs the paper's running example: the multi-branch
// bank of Examples 1.1–1.2, the source/target schemas, the instances of
// Figure 1 (tuples t1–t14, including the dirty 10.5% interest rate in t12),
// the CINDs ψ1–ψ6 of Figure 2 and the CFDs ϕ1–ϕ3 of Figure 4. Tests,
// examples and documentation all draw on this package so that every claim
// in the paper's narrative is executable.
package bank

import (
	"cind/internal/cfd"
	cind "cind/internal/core"
	"cind/internal/instance"
	"cind/internal/pattern"
	"cind/internal/schema"
)

// Branches present in the Figure 1 instance.
var Branches = []string{"NYC", "EDI"}

// AccountRel returns the per-branch source relation name account_B.
func AccountRel(branch string) string { return "account_" + branch }

// Schema builds the source and target schemas of Example 1.1:
//
//	source: account_NYC(an, cn, ca, cp, at), account_EDI(...)
//	target: saving(an, cn, ca, cp, ab), checking(an, cn, ca, cp, ab),
//	        interest(ab, ct, at, rt)
//
// Attribute at has the finite domain {saving, checking}; all other
// attributes range over shared infinite domains.
func Schema() *schema.Schema {
	an := schema.Infinite("an")
	cn := schema.Infinite("cn")
	ca := schema.Infinite("ca")
	cp := schema.Infinite("cp")
	ab := schema.Infinite("ab")
	ct := schema.Infinite("ct")
	rt := schema.Infinite("rt")
	at := schema.Finite("at", "saving", "checking")

	accountAttrs := func() []schema.Attribute {
		return []schema.Attribute{
			{Name: "an", Dom: an}, {Name: "cn", Dom: cn}, {Name: "ca", Dom: ca},
			{Name: "cp", Dom: cp}, {Name: "at", Dom: at},
		}
	}
	targetAttrs := func() []schema.Attribute {
		return []schema.Attribute{
			{Name: "an", Dom: an}, {Name: "cn", Dom: cn}, {Name: "ca", Dom: ca},
			{Name: "cp", Dom: cp}, {Name: "ab", Dom: ab},
		}
	}
	rels := []*schema.Relation{}
	for _, b := range Branches {
		rels = append(rels, schema.MustRelation(AccountRel(b), accountAttrs()...))
	}
	rels = append(rels,
		schema.MustRelation("saving", targetAttrs()...),
		schema.MustRelation("checking", targetAttrs()...),
		schema.MustRelation("interest",
			schema.Attribute{Name: "ab", Dom: ab},
			schema.Attribute{Name: "ct", Dom: ct},
			schema.Attribute{Name: "at", Dom: at},
			schema.Attribute{Name: "rt", Dom: rt},
		),
	)
	return schema.MustNew(rels...)
}

// Data loads the Figure 1 instance: account relations (a)–(b), saving (c),
// checking (d) and interest (e) — including the inconsistent tuple t12
// (EDI, UK, checking, 10.5%) that Example 1.2 revolves around.
func Data(sch *schema.Schema) *instance.Database {
	db := instance.NewDatabase(sch)
	nyc := db.Instance(AccountRel("NYC"))
	nyc.InsertConsts("01", "J. Smith", "NYC, 19087", "212-5820844", "saving")   // t1
	nyc.InsertConsts("02", "G. King", "NYC, 19022", "212-3963455", "checking")  // t2
	nyc.InsertConsts("03", "J. Lee", "NYC, 02284", "212-5679844", "checking")   // t3
	edi := db.Instance(AccountRel("EDI"))
	edi.InsertConsts("01", "S. Bundy", "EDI, EH8 9LE", "131-6516501", "saving") // t4
	edi.InsertConsts("02", "I. Stark", "EDI, EH1 4FE", "131-6693423", "checking") // t5

	sav := db.Instance("saving")
	sav.InsertConsts("01", "J. Smith", "NYC, 19087", "212-5820844", "NYC")  // t6
	sav.InsertConsts("01", "S. Bundy", "EDI, EH8 9LE", "131-6516501", "EDI") // t7

	chk := db.Instance("checking")
	chk.InsertConsts("02", "G. King", "NYC, 19022", "212-3963455", "NYC")   // t8
	chk.InsertConsts("03", "J. Lee", "NYC, 02284", "212-5679844", "NYC")    // t9
	chk.InsertConsts("02", "I. Stark", "EDI, EH1 4FE", "131-6693423", "EDI") // t10

	intr := db.Instance("interest")
	intr.InsertConsts("EDI", "UK", "saving", "4.5%")    // t11
	intr.InsertConsts("EDI", "UK", "checking", "10.5%") // t12 — dirty: should be 1.5%
	intr.InsertConsts("NYC", "US", "saving", "4%")      // t13
	intr.InsertConsts("NYC", "US", "checking", "1%")    // t14
	return db
}

// CleanData is Data with the t12 error repaired (10.5% → 1.5%), the state
// in which every constraint of the paper holds.
func CleanData(sch *schema.Schema) *instance.Database {
	db := Data(sch)
	intr := instance.NewDatabase(sch).Instance("interest") // rebuild interest
	for _, t := range db.Instance("interest").Tuples() {
		if t[3].Str() == "10.5%" {
			intr.InsertConsts("EDI", "UK", "checking", "1.5%")
		} else {
			intr.Insert(t.Clone())
		}
	}
	clean := instance.NewDatabase(sch)
	for _, rel := range sch.Relations() {
		src := db.Instance(rel.Name())
		if rel.Name() == "interest" {
			src = intr
		}
		for _, t := range src.Tuples() {
			clean.Instance(rel.Name()).Insert(t.Clone())
		}
	}
	return clean
}

// w is shorthand for the wildcard.
var w = pattern.Wild

func s(v string) pattern.Symbol { return pattern.Sym(v) }

// Psi1 is ψ1 for branch B: (account_B[an,cn,ca,cp; at] ⊆
// saving[an,cn,ca,cp; ab], {(_,_,_,_, saving || _,_,_,_, B)}).
func Psi1(sch *schema.Schema, branch string) *cind.CIND {
	return cind.MustNew(sch, "psi1_"+branch,
		AccountRel(branch), []string{"an", "cn", "ca", "cp"}, []string{"at"},
		"saving", []string{"an", "cn", "ca", "cp"}, []string{"ab"},
		[]cind.Row{{
			LHS: pattern.Tup(w, w, w, w, s("saving")),
			RHS: pattern.Tup(w, w, w, w, s(branch)),
		}})
}

// Psi2 is ψ2 for branch B, the checking counterpart of ψ1.
func Psi2(sch *schema.Schema, branch string) *cind.CIND {
	return cind.MustNew(sch, "psi2_"+branch,
		AccountRel(branch), []string{"an", "cn", "ca", "cp"}, []string{"at"},
		"checking", []string{"an", "cn", "ca", "cp"}, []string{"ab"},
		[]cind.Row{{
			LHS: pattern.Tup(w, w, w, w, s("checking")),
			RHS: pattern.Tup(w, w, w, w, s(branch)),
		}})
}

// Psi3 is ψ3 = (saving[ab; nil] ⊆ interest[ab; nil], {(_ || _)}) — a
// traditional IND written as a CIND.
func Psi3(sch *schema.Schema) *cind.CIND {
	return cind.MustNew(sch, "psi3",
		"saving", []string{"ab"}, nil,
		"interest", []string{"ab"}, nil,
		[]cind.Row{{LHS: pattern.Tup(w), RHS: pattern.Tup(w)}})
}

// Psi4 is ψ4, the checking counterpart of ψ3.
func Psi4(sch *schema.Schema) *cind.CIND {
	return cind.MustNew(sch, "psi4",
		"checking", []string{"ab"}, nil,
		"interest", []string{"ab"}, nil,
		[]cind.Row{{LHS: pattern.Tup(w), RHS: pattern.Tup(w)}})
}

// Psi5 is ψ5 = (saving[nil; ab] ⊆ interest[nil; ab, at, ct, rt], T5) with
// the two pattern rows of Figure 2 (covering ind5 and ind7).
func Psi5(sch *schema.Schema) *cind.CIND {
	return cind.MustNew(sch, "psi5",
		"saving", nil, []string{"ab"},
		"interest", nil, []string{"ab", "at", "ct", "rt"},
		[]cind.Row{
			{LHS: pattern.Tup(s("EDI")), RHS: pattern.Tup(s("EDI"), s("saving"), s("UK"), s("4.5%"))},
			{LHS: pattern.Tup(s("NYC")), RHS: pattern.Tup(s("NYC"), s("saving"), s("US"), s("4%"))},
		})
}

// Psi6 is ψ6, the checking counterpart of ψ5 (covering ind6 and ind8).
// The Figure 1 instance violates it via tuple t10.
func Psi6(sch *schema.Schema) *cind.CIND {
	return cind.MustNew(sch, "psi6",
		"checking", nil, []string{"ab"},
		"interest", nil, []string{"ab", "at", "ct", "rt"},
		[]cind.Row{
			{LHS: pattern.Tup(s("EDI")), RHS: pattern.Tup(s("EDI"), s("checking"), s("UK"), s("1.5%"))},
			{LHS: pattern.Tup(s("NYC")), RHS: pattern.Tup(s("NYC"), s("checking"), s("US"), s("1%"))},
		})
}

// CINDs returns Figure 2 in order: ψ1 and ψ2 for each branch, then ψ3–ψ6.
func CINDs(sch *schema.Schema) []*cind.CIND {
	var out []*cind.CIND
	for _, b := range Branches {
		out = append(out, Psi1(sch, b), Psi2(sch, b))
	}
	out = append(out, Psi3(sch), Psi4(sch), Psi5(sch), Psi6(sch))
	return out
}

// Phi1 is ϕ1 = (saving(an, ab → cn, ca, cp), all-wild) — fd1 as a CFD.
func Phi1(sch *schema.Schema) *cfd.CFD {
	return cfd.MustNew(sch, "phi1", "saving",
		[]string{"an", "ab"}, []string{"cn", "ca", "cp"},
		[]cfd.Row{{LHS: pattern.Wilds(2), RHS: pattern.Wilds(3)}})
}

// Phi2 is ϕ2 — fd2 as a CFD on checking.
func Phi2(sch *schema.Schema) *cfd.CFD {
	return cfd.MustNew(sch, "phi2", "checking",
		[]string{"an", "ab"}, []string{"cn", "ca", "cp"},
		[]cfd.Row{{LHS: pattern.Wilds(2), RHS: pattern.Wilds(3)}})
}

// Phi3 is ϕ3 = (interest(ct, at → rt), T'3): the plain fd3 row plus the
// four constant refinements of Figure 4.
func Phi3(sch *schema.Schema) *cfd.CFD {
	return cfd.MustNew(sch, "phi3", "interest",
		[]string{"ct", "at"}, []string{"rt"},
		[]cfd.Row{
			{LHS: pattern.Wilds(2), RHS: pattern.Wilds(1)},
			{LHS: pattern.Tup(s("UK"), s("saving")), RHS: pattern.Tup(s("4.5%"))},
			{LHS: pattern.Tup(s("UK"), s("checking")), RHS: pattern.Tup(s("1.5%"))},
			{LHS: pattern.Tup(s("US"), s("saving")), RHS: pattern.Tup(s("4%"))},
			{LHS: pattern.Tup(s("US"), s("checking")), RHS: pattern.Tup(s("1%"))},
		})
}

// CFDs returns Figure 4 in order ϕ1, ϕ2, ϕ3.
func CFDs(sch *schema.Schema) []*cfd.CFD {
	return []*cfd.CFD{Phi1(sch), Phi2(sch), Phi3(sch)}
}
