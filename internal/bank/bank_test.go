package bank

import (
	"testing"

	"cind/internal/fd"
	"cind/internal/ind"
	"cind/internal/instance"
)

// TestFigure1Shape pins the Figure 1 instance: tuple counts per relation
// and the identity of the dirty tuple t12.
func TestFigure1Shape(t *testing.T) {
	sch := Schema()
	db := Data(sch)
	want := map[string]int{
		"account_NYC": 3, "account_EDI": 2,
		"saving": 2, "checking": 3, "interest": 4,
	}
	for rel, n := range want {
		if got := db.Instance(rel).Len(); got != n {
			t.Errorf("%s has %d tuples, want %d", rel, got, n)
		}
	}
	if !db.Instance("interest").Contains(instance.Consts("EDI", "UK", "checking", "10.5%")) {
		t.Error("t12 (the dirty tuple) missing")
	}
}

// TestCleanDataDiffersOnlyInT12: the repair touches exactly one tuple.
func TestCleanDataDiffersOnlyInT12(t *testing.T) {
	sch := Schema()
	dirty, clean := Data(sch), CleanData(sch)
	for _, rel := range sch.Relations() {
		d, c := dirty.Instance(rel.Name()), clean.Instance(rel.Name())
		if d.Len() != c.Len() {
			t.Errorf("%s: repair changed cardinality", rel.Name())
		}
		diff := 0
		for _, tup := range d.Tuples() {
			if !c.Contains(tup) {
				diff++
			}
		}
		if rel.Name() == "interest" && diff != 1 {
			t.Errorf("interest: %d tuples differ, want 1", diff)
		}
		if rel.Name() != "interest" && diff != 0 {
			t.Errorf("%s: repair must not touch it", rel.Name())
		}
	}
	if !clean.Instance("interest").Contains(instance.Consts("EDI", "UK", "checking", "1.5%")) {
		t.Error("repaired tuple missing")
	}
}

// TestTraditionalDependenciesHoldOnFig1 replays the Example 1.2 setup: the
// traditional fd1–fd3 and ind3–ind4 are satisfied by the dirty instance —
// the reason conditional dependencies are needed at all.
func TestTraditionalDependenciesHoldOnFig1(t *testing.T) {
	sch := Schema()
	db := Data(sch)
	// fd1/fd2 hold: their CFD forms are the all-wild ϕ1/ϕ2.
	if !Phi1(sch).Satisfied(db) || !Phi2(sch).Satisfied(db) {
		t.Error("fd1/fd2 (as all-wild CFDs) must hold on Fig 1")
	}
	// fd3 holds as a plain FD: closure-based check needs instances, so use
	// the all-wild CFD row of ϕ3 alone via a fresh CFD — covered by the cfd
	// package tests; here check the fd package's view of the key structure.
	all := []string{"an", "cn", "ca", "cp", "ab"}
	fd1 := fd.New("saving", []string{"an", "ab"}, []string{"cn", "ca", "cp"})
	if !fd.IsKey("saving", []string{"an", "ab"}, all, []fd.FD{fd1}) {
		t.Error("(an, ab) must be a key of saving under fd1")
	}
	// ind3/ind4 hold on Fig 1 and are expressible in the ind package.
	for _, d := range []ind.IND{
		ind.MustNew("saving", []string{"ab"}, "interest", []string{"ab"}),
		ind.MustNew("checking", []string{"ab"}, "interest", []string{"ab"}),
	} {
		if !ind.Implies([]ind.IND{d}, d) {
			t.Errorf("%v must imply itself", d)
		}
	}
	if !Psi3(sch).Satisfied(db) || !Psi4(sch).Satisfied(db) {
		t.Error("ind3/ind4 (as CINDs ψ3/ψ4) must hold on Fig 1")
	}
}

// TestConstraintInventory pins the Figure 2 / Figure 4 counts.
func TestConstraintInventory(t *testing.T) {
	sch := Schema()
	if got := len(CINDs(sch)); got != 8 { // ψ1, ψ2 per branch + ψ3–ψ6
		t.Errorf("CINDs = %d, want 8", got)
	}
	if got := len(CFDs(sch)); got != 3 {
		t.Errorf("CFDs = %d, want 3", got)
	}
	if len(Psi5(sch).Rows) != 2 || len(Psi6(sch).Rows) != 2 {
		t.Error("ψ5/ψ6 carry two pattern rows each (ind5–ind8)")
	}
	if len(Phi3(sch).Rows) != 5 {
		t.Error("ϕ3 carries the wild row plus four refinements")
	}
}

// TestExampleFixtures sanity-checks the Example 3.2/4.2/3.4 builders.
func TestExampleFixtures(t *testing.T) {
	if sch, cfds := Example32(true); sch.Len() != 1 || len(cfds) != 4 {
		t.Error("Example32 shape wrong")
	}
	if sch, phi, psi := Example42(); sch.Len() != 1 || len(phi) != 1 || len(psi) != 1 {
		t.Error("Example42 shape wrong")
	}
	sch34, sigma, goal := Example34Infinite()
	if sch34.HasFiniteAttrs() {
		t.Error("Example34Infinite must have no finite attributes")
	}
	if len(sigma) != 4 || goal == nil {
		t.Error("Example34Infinite shape wrong")
	}
}
