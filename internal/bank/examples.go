package bank

import (
	"cind/internal/cfd"
	cind "cind/internal/core"
	"cind/internal/pattern"
	"cind/internal/schema"
)

// Example32 builds the CFDs φ1–φ4 of Example 3.2 over R(A, B): with
// finiteA they refine the FDs A → B and B → A into an inconsistent set
// (dom(A) = bool); with an infinite dom(A) the set is consistent.
func Example32(finiteA bool) (*schema.Schema, []*cfd.CFD) {
	var aDom *schema.Domain
	if finiteA {
		aDom = schema.Finite("bool", "true", "false")
	} else {
		aDom = schema.Infinite("a")
	}
	bDom := schema.Infinite("b")
	sch := schema.MustNew(schema.MustRelation("R",
		schema.Attribute{Name: "A", Dom: aDom},
		schema.Attribute{Name: "B", Dom: bDom}))
	mk := func(id, x, xv, y, yv string) *cfd.CFD {
		return cfd.MustNew(sch, id, "R", []string{x}, []string{y},
			[]cfd.Row{{LHS: pattern.Tup(s(xv)), RHS: pattern.Tup(s(yv))}})
	}
	return sch, []*cfd.CFD{
		mk("phi1", "A", "true", "B", "b1"),
		mk("phi2", "A", "false", "B", "b2"),
		mk("phi3", "B", "b1", "A", "false"),
		mk("phi4", "B", "b2", "A", "true"),
	}
}

// Example42 builds the Example 4.2 conflict: φ = (R: A → B, (_||a)) forces
// B = a on every tuple while ψ = (R[nil; B] ⊆ R[nil; B], (_||b)) — in
// normal form, an unconditional demand for some tuple with B = b — forces
// B = b somewhere. Each is separately consistent; together they admit no
// nonempty instance.
func Example42() (*schema.Schema, []*cfd.CFD, []*cind.CIND) {
	d := schema.Infinite("d")
	sch := schema.MustNew(schema.MustRelation("R",
		schema.Attribute{Name: "A", Dom: d},
		schema.Attribute{Name: "B", Dom: d}))
	phi := cfd.MustNew(sch, "phi", "R", []string{"A"}, []string{"B"},
		[]cfd.Row{{LHS: pattern.Wilds(1), RHS: pattern.Tup(s("a"))}})
	psi := cind.MustNew(sch, "psi", "R", nil, nil, "R", nil, []string{"B"},
		[]cind.Row{{LHS: pattern.Tup(), RHS: pattern.Tup(s("b"))}})
	return sch, []*cfd.CFD{phi}, []*cind.CIND{psi}
}

// Example34Infinite rebuilds the Example 3.3/3.4 implication instance with
// an INFINITE account-type domain: Σ (the ψ1/ψ2/ψ5/ψ6 analogues for branch
// EDI) no longer implies the goal, because the CIND8 merge needs dom(at)
// covered — the boundary between Tables 1 and 2.
func Example34Infinite() (*schema.Schema, []*cind.CIND, *cind.CIND) {
	str := schema.Infinite("str")
	target := func(name string) *schema.Relation {
		return schema.MustRelation(name,
			schema.Attribute{Name: "an", Dom: str}, schema.Attribute{Name: "cn", Dom: str},
			schema.Attribute{Name: "ca", Dom: str}, schema.Attribute{Name: "cp", Dom: str},
			schema.Attribute{Name: "ab", Dom: str})
	}
	sch := schema.MustNew(
		schema.MustRelation("account_EDI",
			schema.Attribute{Name: "an", Dom: str}, schema.Attribute{Name: "cn", Dom: str},
			schema.Attribute{Name: "ca", Dom: str}, schema.Attribute{Name: "cp", Dom: str},
			schema.Attribute{Name: "at", Dom: str}),
		target("saving"), target("checking"),
		schema.MustRelation("interest",
			schema.Attribute{Name: "ab", Dom: str}, schema.Attribute{Name: "ct", Dom: str},
			schema.Attribute{Name: "at", Dom: str}, schema.Attribute{Name: "rt", Dom: str}),
	)
	w := pattern.Wild
	mkAcct := func(id, atVal, targetRel string) *cind.CIND {
		return cind.MustNew(sch, id, "account_EDI",
			[]string{"an", "cn", "ca", "cp"}, []string{"at"},
			targetRel, []string{"an", "cn", "ca", "cp"}, []string{"ab"},
			[]cind.Row{{LHS: pattern.Tup(w, w, w, w, s(atVal)), RHS: pattern.Tup(w, w, w, w, s("EDI"))}})
	}
	mkInt := func(id, src, atVal, rt string) *cind.CIND {
		return cind.MustNew(sch, id, src, nil, []string{"ab"},
			"interest", nil, []string{"ab", "at", "ct", "rt"},
			[]cind.Row{{LHS: pattern.Tup(s("EDI")),
				RHS: pattern.Tup(s("EDI"), s(atVal), s("UK"), s(rt))}})
	}
	sigma := []*cind.CIND{
		mkAcct("psi1", "saving", "saving"),
		mkAcct("psi2", "checking", "checking"),
		mkInt("psi5", "saving", "saving", "4.5%"),
		mkInt("psi6", "checking", "checking", "1.5%"),
	}
	goal := cind.MustNew(sch, "ex33", "account_EDI", []string{"at"}, nil,
		"interest", []string{"at"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	return sch, sigma, goal
}
