package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringPoints is the number of virtual nodes per shard on the hash ring.
// 64 keeps the load spread within a few percent of even for small shard
// counts without making Pick's binary search noticeable.
const ringPoints = 64

// Ring is a consistent-hash ring over shard indices — the router's
// dataset-placement function for work that one shard serves alone
// (reasoning calls, which depend only on the constraint set every shard
// holds in full). Hashing the dataset name spreads datasets across shards;
// consistency means a shard added or removed from the route list moves
// only the datasets that hashed to it, not the whole assignment.
type Ring struct {
	hashes []uint64
	shards []int
}

// NewRing builds the ring over n shards.
func NewRing(n int) *Ring {
	r := &Ring{
		hashes: make([]uint64, 0, n*ringPoints),
		shards: make([]int, 0, n*ringPoints),
	}
	type point struct {
		h     uint64
		shard int
	}
	pts := make([]point, 0, n*ringPoints)
	for s := 0; s < n; s++ {
		for v := 0; v < ringPoints; v++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "shard-%d-%d", s, v)
			pts = append(pts, point{h: mix64(h.Sum64()), shard: s})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].shard < pts[j].shard
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.shards = append(r.shards, p.shard)
	}
	return r
}

// Pick returns the shard owning key: the first ring point at or clockwise
// of the key's hash.
func (r *Ring) Pick(key string) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	hv := mix64(h.Sum64())
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= hv })
	if i == len(r.hashes) {
		i = 0
	}
	return r.shards[i]
}

// mix64 is a splitmix64-style avalanche finalizer. FNV-1a alone leaves
// short, similar inputs ("shard-0-0", "shard-0-1", ...) clustered in the
// high bits, which would pile every virtual node into one tiny arc; full
// avalanche spreads them uniformly around the ring.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
