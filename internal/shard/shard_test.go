package shard

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"testing"

	cind "cind"

	"cind/internal/bank"
	"cind/internal/detect"
	"cind/internal/instance"
	"cind/internal/stream"
)

func bankSet(t testing.TB) *cind.ConstraintSet {
	t.Helper()
	sch := bank.Schema()
	set, err := cind.SpecSet(&cind.Spec{Schema: sch, CFDs: bank.CFDs(sch), CINDs: bank.CINDs(sch)})
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// dirtyBank is the bank example instance with extra violations planted:
// checking tuples colliding on (an, ab) with conflicting names (phi2
// pairs), and interest rows deleted (stranding psi3/psi4 demands).
func dirtyBank(t testing.TB) (*cind.ConstraintSet, *cind.Database) {
	t.Helper()
	set := bankSet(t)
	db := bank.Data(bank.Schema())
	for i := 0; i < 40; i++ {
		db.Instance("checking").Insert(instance.Consts(
			fmt.Sprintf("%03d", i%8), fmt.Sprintf("Cust-%d", i), "Addr", "555",
			[]string{"NYC", "EDI"}[i%2]))
	}
	in := db.Instance("interest")
	if tuples := in.Tuples(); len(tuples) > 0 {
		in.Delete(tuples[0])
	}
	return set, db
}

func TestPlanBankPlacement(t *testing.T) {
	set := bankSet(t)
	p, err := NewPlan(set, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Shards() != 4 || p.Set() != set {
		t.Fatalf("Shards/Set = %d/%p, want 4/%p", p.Shards(), p.Set(), set)
	}
	// saving, checking, interest sit on a CIND RHS: replicated despite
	// carrying CFDs. The account relations drive no CFD and are nobody's
	// RHS: partitioned on the full tuple.
	for _, rel := range []string{"saving", "checking", "interest"} {
		if pl := p.Placement(rel); pl.Partitioned {
			t.Errorf("%s partitioned, want replicated (CIND RHS)", rel)
		}
	}
	for _, rel := range []string{"account_NYC", "account_EDI"} {
		pl := p.Placement(rel)
		if !pl.Partitioned {
			t.Errorf("%s replicated, want partitioned", rel)
			continue
		}
		if len(pl.Cols) != 5 {
			t.Errorf("%s partition cols = %v, want all 5", rel, pl.Cols)
		}
	}
	// CFDs drive replicated relations: shard 0 owns them. The account
	// CINDs drive partitioned relations: every shard owns its slice.
	for _, id := range []string{"phi1", "phi2", "phi3", "psi3", "psi4", "psi5", "psi6"} {
		if p.Keep(0, id) != true || p.Keep(1, id) != false {
			t.Errorf("Keep(%s) = %v/%v, want shard-0 ownership", id, p.Keep(0, id), p.Keep(1, id))
		}
	}
	for _, id := range []string{"psi1_NYC", "psi2_NYC", "psi1_EDI", "psi2_EDI"} {
		if !p.Keep(0, id) || !p.Keep(3, id) {
			t.Errorf("Keep(%s) not true on all shards", id)
		}
	}
	if p.Keep(0, "nope") {
		t.Error("Keep(unknown constraint) = true, want false")
	}
}

func TestNewPlanRejectsBadShardCount(t *testing.T) {
	if _, err := NewPlan(bankSet(t), 0); err == nil {
		t.Fatal("NewPlan(set, 0) succeeded, want error")
	}
}

func TestShardOfDeterministicAndSpread(t *testing.T) {
	set := bankSet(t)
	p, err := NewPlan(set, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sh := p.ShardOf("saving", instance.Consts("a", "b", "c", "d", "e")); sh != -1 {
		t.Fatalf("ShardOf(replicated saving) = %d, want -1", sh)
	}
	seen := make(map[int]int)
	for i := 0; i < 256; i++ {
		tup := instance.Consts(fmt.Sprintf("an%d", i), "cn", "ca", "cp", "NYC")
		sh := p.ShardOf("account_NYC", tup)
		if sh < 0 || sh >= 4 {
			t.Fatalf("ShardOf = %d, out of [0,4)", sh)
		}
		if again := p.ShardOf("account_NYC", tup); again != sh {
			t.Fatalf("ShardOf not deterministic: %d then %d", sh, again)
		}
		seen[sh]++
	}
	for sh := 0; sh < 4; sh++ {
		if seen[sh] == 0 {
			t.Errorf("shard %d received no tuples of 256", sh)
		}
	}
}

func TestDataDirNamespacesByShard(t *testing.T) {
	a, b := DataDir("/var/lib/cind", 0), DataDir("/var/lib/cind", 1)
	if a == b {
		t.Fatalf("DataDir shard 0 and 1 collide: %s", a)
	}
	if !strings.HasPrefix(a, "/var/lib/cind") {
		t.Fatalf("DataDir left the root: %s", a)
	}
}

func TestOrderSetSemantics(t *testing.T) {
	set := bankSet(t)
	p, err := NewPlan(set, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOrder(p)
	tup := instance.Consts("001", "Cust", "Addr", "555", "NYC")
	if !o.Insert("checking", tup) {
		t.Fatal("first Insert = false")
	}
	if o.Insert("checking", tup) {
		t.Fatal("duplicate Insert = true, want no-op")
	}
	if o.Len("checking") != 1 {
		t.Fatalf("Len = %d, want 1", o.Len("checking"))
	}
	if o.Delete("checking", instance.Consts("999", "x", "y", "z", "EDI")) {
		t.Fatal("absent Delete = true, want no-op")
	}
	if !o.Delete("checking", tup) {
		t.Fatal("live Delete = false")
	}
	if o.Len("checking") != 0 {
		t.Fatalf("Len after delete = %d, want 0", o.Len("checking"))
	}
	// Apply routes ops to Insert/Delete.
	if !o.Apply(cind.InsertDelta("checking", tup)) {
		t.Fatal("Apply(insert) = false")
	}
	if !o.Apply(cind.DeleteDelta("checking", tup)) {
		t.Fatal("Apply(delete) = false")
	}
}

func TestOrderKeyErrors(t *testing.T) {
	set := bankSet(t)
	p, err := NewPlan(set, 2)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOrder(p)
	if _, err := o.Key(&stream.Violation{Constraint: "nope", Witness: [][]string{{"a"}}}); err == nil {
		t.Error("Key(unknown constraint) succeeded")
	}
	if _, err := o.Key(&stream.Violation{Constraint: "phi2"}); err == nil {
		t.Error("Key(no witness) succeeded")
	}
	if _, err := o.Key(&stream.Violation{Constraint: "phi2",
		Witness: [][]string{{"001", "c", "a", "p", "NYC"}}}); err == nil {
		t.Error("Key(untracked CFD group) succeeded")
	}
	if _, err := o.Key(&stream.Violation{Constraint: "psi3",
		Witness: [][]string{{"a", "b", "c", "d", "e"}}}); err == nil {
		t.Error("Key(untracked CIND tuple) succeeded")
	}
}

// resultWire renders a detection result in report order — all CFD
// violations, then all CIND violations.
func resultWire(res *detect.Result) []stream.Violation {
	out := make([]stream.Violation, 0, res.Total())
	for _, v := range res.CFD {
		out = append(out, stream.Convert(detect.CFDViolation(v)))
	}
	for _, v := range res.CIND {
		out = append(out, stream.Convert(detect.CINDViolation(v)))
	}
	return out
}

type sliceSource struct {
	vs []stream.Violation
	i  int
}

func (s *sliceSource) Next() (stream.Violation, error) {
	if s.i >= len(s.vs) {
		return stream.Violation{}, io.EOF
	}
	v := s.vs[s.i]
	s.i++
	return v, nil
}

// scatter splits db per the plan into one database per shard and records
// the global insertion order in a fresh Order.
func scatter(t testing.TB, p *Plan, db *cind.Database) ([]*cind.Database, *Order) {
	t.Helper()
	o := NewOrder(p)
	dbs := make([]*cind.Database, p.Shards())
	for i := range dbs {
		dbs[i] = cind.NewDatabase(p.Set().Schema())
	}
	for _, rel := range p.Set().Schema().Relations() {
		name := rel.Name()
		for _, tup := range db.Instance(name).Tuples() {
			o.Insert(name, tup)
			if sh := p.ShardOf(name, tup); sh >= 0 {
				dbs[sh].Instance(name).Insert(tup)
			} else {
				for i := range dbs {
					dbs[i].Instance(name).Insert(tup)
				}
			}
		}
	}
	return dbs, o
}

// mergeShards detects on every shard database and k-way merges the
// per-shard report-ordered streams back together.
func mergeShards(t testing.TB, p *Plan, o *Order, dbs []*cind.Database) []stream.Violation {
	t.Helper()
	set := p.Set()
	sources := make([]Source, len(dbs))
	for i, sdb := range dbs {
		res := detect.Run(sdb, set.CFDs(), set.CINDs(), detect.Options{Parallel: 1})
		sources[i] = &sliceSource{vs: resultWire(res)}
	}
	var merged []stream.Violation
	_, err := Merge(sources,
		func(sh int, v *stream.Violation) (detect.MergeKey, bool, error) {
			if !p.Keep(sh, v.Constraint) {
				return detect.MergeKey{}, false, nil
			}
			k, err := o.Key(v)
			return k, err == nil, err
		},
		func(v *stream.Violation) bool {
			merged = append(merged, *v)
			return true
		})
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	return merged
}

// TestShardedDetectMatchesSingleNode is the package's acceptance test: for
// 1, 2 and 4 shards, partitioning the dirty bank instance per the plan,
// detecting per shard, and merging through Order-reconstructed keys must
// reproduce the single-node detection stream violation for violation — and
// keep doing so after a delta batch mutates every copy.
func TestShardedDetectMatchesSingleNode(t *testing.T) {
	set, db := dirtyBank(t)
	single := detect.Run(db, set.CFDs(), set.CINDs(), detect.Options{Parallel: 1})
	want := resultWire(single)
	if len(want) == 0 {
		t.Fatal("dirty bank produced no violations; test is vacuous")
	}

	deltas := []cind.Delta{
		cind.InsertDelta("checking", instance.Consts("001", "Other-Name", "Addr", "555", "NYC")),
		cind.DeleteDelta("checking", instance.Consts("000", "Cust-0", "Addr", "555", "NYC")),
		cind.InsertDelta("account_NYC", instance.Consts("900", "N", "A", "5", "checking")),
		cind.InsertDelta("interest", instance.Consts("2.00", "UK", "saving", "4.5%")),
	}

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			p, err := NewPlan(set, n)
			if err != nil {
				t.Fatal(err)
			}
			dbs, o := scatter(t, p, db)
			got := mergeShards(t, p, o, dbs)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("merged stream diverges from single node: %d vs %d violations\nfirst got:  %+v\nfirst want: %+v",
					len(got), len(want), head(got), head(want))
			}

			// Mutate: single node and every shard copy apply the same batch;
			// the order tracker follows. The merged stream must track.
			mutated := cloneDB(set, db)
			applyDeltas(mutated, deltas)
			for _, dl := range deltas {
				if sh := p.ShardOf(dl.Rel, dl.Tuple); sh >= 0 {
					applyDeltas(dbs[sh], []cind.Delta{dl})
				} else {
					for i := range dbs {
						applyDeltas(dbs[i], []cind.Delta{dl})
					}
				}
				o.Apply(dl)
			}
			want2 := resultWire(detect.Run(mutated, set.CFDs(), set.CINDs(), detect.Options{Parallel: 1}))
			got2 := mergeShards(t, p, o, dbs)
			if !reflect.DeepEqual(got2, want2) {
				t.Fatalf("post-delta merged stream diverges: %d vs %d violations", len(got2), len(want2))
			}
		})
	}
}

func head(vs []stream.Violation) any {
	if len(vs) == 0 {
		return "<empty>"
	}
	return vs[0]
}

func cloneDB(set *cind.ConstraintSet, db *cind.Database) *cind.Database {
	out := cind.NewDatabase(set.Schema())
	for _, rel := range set.Schema().Relations() {
		for _, tup := range db.Instance(rel.Name()).Tuples() {
			out.Instance(rel.Name()).Insert(tup)
		}
	}
	return out
}

func applyDeltas(db *cind.Database, deltas []cind.Delta) {
	for _, d := range deltas {
		if d.Op == detect.OpInsert {
			db.Instance(d.Rel).Insert(d.Tuple)
		} else {
			db.Instance(d.Rel).Delete(d.Tuple)
		}
	}
}

func TestMergeStopsOnConsumer(t *testing.T) {
	vs := []stream.Violation{{Constraint: "a"}, {Constraint: "b"}, {Constraint: "c"}}
	keyOf := func(sh int, v *stream.Violation) (detect.MergeKey, bool, error) {
		return detect.MergeKey{Seq: uint64(v.Constraint[0])}, true, nil
	}
	n := 0
	count, err := Merge([]Source{&sliceSource{vs: vs}}, keyOf, func(*stream.Violation) bool {
		n++
		return n < 2
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 1 {
		t.Fatalf("emitted count = %d, want 1", count)
	}
}

type errSource struct{ err error }

func (s *errSource) Next() (stream.Violation, error) { return stream.Violation{}, s.err }

func TestMergeWrapsSourceError(t *testing.T) {
	boom := errors.New("boom")
	_, err := Merge([]Source{&sliceSource{}, &errSource{err: boom}},
		func(int, *stream.Violation) (detect.MergeKey, bool, error) {
			return detect.MergeKey{}, true, nil
		},
		func(*stream.Violation) bool { return true })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("err %q does not name shard 1", err)
	}
}

func TestMergeKeyOfError(t *testing.T) {
	bad := errors.New("no key")
	_, err := Merge([]Source{&sliceSource{vs: []stream.Violation{{}}}},
		func(int, *stream.Violation) (detect.MergeKey, bool, error) {
			return detect.MergeKey{}, false, bad
		},
		func(*stream.Violation) bool { return true })
	if !errors.Is(err, bad) {
		t.Fatalf("err = %v, want keyOf error", err)
	}
}

func TestRingPick(t *testing.T) {
	r := NewRing(4)
	seen := make(map[int]int)
	for i := 0; i < 512; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		sh := r.Pick(key)
		if sh < 0 || sh >= 4 {
			t.Fatalf("Pick = %d, out of range", sh)
		}
		if again := r.Pick(key); again != sh {
			t.Fatalf("Pick not deterministic: %d then %d", sh, again)
		}
		seen[sh]++
	}
	for sh := 0; sh < 4; sh++ {
		if seen[sh] == 0 {
			t.Errorf("ring never picked shard %d over 512 keys", sh)
		}
	}
	// Consistency: growing the fleet moves only a fraction of the keys.
	bigger := NewRing(5)
	moved := 0
	for i := 0; i < 512; i++ {
		key := fmt.Sprintf("dataset-%d", i)
		if bigger.Pick(key) != r.Pick(key) {
			moved++
		}
	}
	if moved > 256 {
		t.Errorf("growing 4->5 shards moved %d/512 keys, want a minority", moved)
	}
}
