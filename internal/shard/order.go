package shard

import (
	"fmt"
	"sort"

	cind "cind"

	"cind/internal/detect"
	"cind/internal/stream"
	"cind/internal/types"
)

// Order mirrors, router-side, the tuple ordering a single node's instances
// would hold: every live tuple's insertion rank (instances keep insertion
// order, and deletes preserve the survivors' order) and, per CFD X set,
// each projection group's set of live ranks. That is exactly the state
// needed to reconstruct a detect.MergeKey for any wire violation:
//
//   - a CIND violation's rank is its witness tuple's insertion rank;
//   - a CFD violation's rank is its X group's first-seen scan rank, i.e.
//     the minimum live rank among the group's members — which deletions
//     can advance, hence the per-group rank lists rather than a frozen
//     first-insert rank.
//
// Order is not safe for concurrent use; the router serializes mutations
// against gathers with its per-dataset lock, the same reader/writer
// discipline a single-node Checker documents.
type Order struct {
	plan *Plan
	next map[string]uint64
	seqs map[string]map[string]uint64
	// groups[x] maps a projection key of xset x to the sorted live ranks
	// of the group's members.
	groups []map[string][]uint64
}

// NewOrder returns an empty tracker for the plan's constraint set.
func NewOrder(p *Plan) *Order {
	o := &Order{
		plan:   p,
		next:   make(map[string]uint64),
		seqs:   make(map[string]map[string]uint64),
		groups: make([]map[string][]uint64, len(p.xsets)),
	}
	for _, rel := range p.set.Schema().Relations() {
		o.seqs[rel.Name()] = make(map[string]uint64)
	}
	for i := range o.groups {
		o.groups[i] = make(map[string][]uint64)
	}
	return o
}

// Len returns the live tuple count of rel.
func (o *Order) Len(rel string) int { return len(o.seqs[rel]) }

// Insert records a tuple insertion. It reports whether the tuple was new —
// false reproduces the instance's set semantics (a duplicate insert is a
// no-op and must not consume a rank).
func (o *Order) Insert(rel string, t cind.Tuple) bool {
	key := types.TupleKey(t)
	m := o.seqs[rel]
	if _, dup := m[key]; dup {
		return false
	}
	seq := o.next[rel]
	o.next[rel] = seq + 1
	m[key] = seq
	for _, xs := range o.plan.relXsets[rel] {
		pk := projKey(t, o.plan.xsets[xs].cols)
		// seq is monotone, so appending keeps the rank list sorted.
		o.groups[xs][pk] = append(o.groups[xs][pk], seq)
	}
	return true
}

// Delete records a tuple deletion. It reports whether the tuple was live
// (an absent delete is a no-op, mirroring the instance).
func (o *Order) Delete(rel string, t cind.Tuple) bool {
	key := types.TupleKey(t)
	m := o.seqs[rel]
	seq, ok := m[key]
	if !ok {
		return false
	}
	delete(m, key)
	for _, xs := range o.plan.relXsets[rel] {
		pk := projKey(t, o.plan.xsets[xs].cols)
		g := o.groups[xs][pk]
		i := sort.Search(len(g), func(i int) bool { return g[i] >= seq })
		if i < len(g) && g[i] == seq {
			g = append(g[:i], g[i+1:]...)
		}
		if len(g) == 0 {
			delete(o.groups[xs], pk)
		} else {
			o.groups[xs][pk] = g
		}
	}
	return true
}

// Apply records one delta's effect and reports whether it changed
// anything.
func (o *Order) Apply(d cind.Delta) bool {
	if d.Op == detect.OpInsert {
		return o.Insert(d.Rel, d.Tuple)
	}
	return o.Delete(d.Rel, d.Tuple)
}

// Key reconstructs the violation's position in the global report order.
// The violation's witness tuples must be live in the tracked state — for a
// delta diff's removed side, call Key before applying the batch to the
// tracker; for the added side and for violation streams, after.
func (o *Order) Key(v *stream.Violation) (detect.MergeKey, error) {
	ci, ok := o.plan.cons[v.Constraint]
	if !ok {
		return detect.MergeKey{}, fmt.Errorf("shard: violation names unknown constraint %q", v.Constraint)
	}
	if len(v.Witness) == 0 {
		return detect.MergeKey{}, fmt.Errorf("shard: violation of %q carries no witness", v.Constraint)
	}
	k := detect.MergeKey{Kind: ci.kind, Constraint: ci.idx, Row: v.Row}
	w := cind.Consts(v.Witness[0]...)
	if ci.xs >= 0 {
		g := o.groups[ci.xs][projKey(w, o.plan.xsets[ci.xs].cols)]
		if len(g) == 0 {
			return detect.MergeKey{}, fmt.Errorf("shard: violation of %q references an untracked %s group", v.Constraint, ci.rel)
		}
		k.Seq = g[0]
		return k, nil
	}
	seq, ok := o.seqs[ci.rel][types.TupleKey(w)]
	if !ok {
		return detect.MergeKey{}, fmt.Errorf("shard: violation of %q references an untracked %s tuple", v.Constraint, ci.rel)
	}
	k.Seq = seq
	return k, nil
}

// projKey builds the injective projection key of t on cols.
func projKey(t cind.Tuple, cols []int) string {
	b := make([]byte, 0, 32)
	for _, c := range cols {
		b = types.AppendKey(b, t[c])
	}
	return string(b)
}
