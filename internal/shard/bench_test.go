package shard

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	cind "cind"

	"cind/internal/detect"
	"cind/internal/gen"
	"cind/internal/stream"
	"cind/internal/types"
)

// benchWorkload builds a ~total-tuple instance over a generated schema.
// CFDRatio 1 keeps every relation free of CIND RHS replication, and F 0
// makes every domain infinite so synthetic partition-key values are legal.
// Partitioned relations get the bulk of the tuples with distinct partition
// projections (so the plan actually spreads them), plus a few witness
// clones mutated off-key to seed real violations.
func benchWorkload(tb testing.TB, total int) (*cind.ConstraintSet, *cind.Database, int) {
	tb.Helper()
	w := gen.New(gen.Config{Relations: 12, Card: 48, CFDRatio: 1.0, Consistent: true, Seed: 7})
	set, err := cind.SpecSet(&cind.Spec{Schema: w.Schema, CFDs: w.CFDs, CINDs: w.CINDs})
	if err != nil {
		tb.Fatal(err)
	}
	ref, err := NewPlan(set, 2)
	if err != nil {
		tb.Fatal(err)
	}

	var parted []string
	for _, rel := range w.Schema.Relations() {
		if ref.Placement(rel.Name()).Partitioned {
			parted = append(parted, rel.Name())
		}
	}
	if len(parted) == 0 {
		tb.Fatal("generated workload has no partitioned relations; tune gen.Config")
	}

	db := w.Witness.Clone()
	per := total / len(parted)
	n := 0
	for _, name := range parted {
		in := db.Instance(name)
		witness := in.Tuples()[0]
		cols := ref.Placement(name).Cols
		for i := 0; i < per; i++ {
			t := witness.Clone()
			for _, c := range cols {
				t[c] = types.C(fmt.Sprintf("k%d-%d", c, i))
			}
			if in.Insert(t) {
				n++
			}
		}
	}
	// One dirty clone per CFD: keep the witness's X values (same shard by
	// construction — the partition projection is a subset of X) but break
	// a Y attribute outside X, so the (witness, clone) pair violates.
	// Bounded count keeps violations linear, not quadratic.
	dirty := 0
	for _, c := range set.CFDs() {
		rel, ok := w.Schema.Relation(c.Rel)
		if !ok {
			continue
		}
		yCol := -1
		for _, y := range c.Y {
			inX := false
			for _, x := range c.X {
				if x == y {
					inX = true
					break
				}
			}
			if !inX {
				yCol = rel.Cols([]string{y})[0]
				break
			}
		}
		if yCol < 0 {
			continue
		}
		in := db.Instance(c.Rel)
		t := in.Tuples()[0].Clone()
		t[yCol] = types.C("dirty-" + c.ID)
		if in.Insert(t) {
			n++
			dirty++
		}
	}
	if dirty == 0 {
		tb.Fatal("no dirty clones inserted; benchmark would be vacuous")
	}
	return set, db, n
}

// BenchmarkShardedDetect measures scatter-gather detection throughput at
// 1, 2 and 4 shards. The host has a single core, so wall time cannot show
// cluster speedup; instead each iteration times every shard's detection
// separately and reports the simulated-cluster critical path — the slowest
// shard plus the k-way merge — as tuples/s. That is the number a real N
// -node fleet is bounded by.
func BenchmarkShardedDetect(b *testing.B) {
	set, db, total := benchWorkload(b, 100_000)
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			plan, err := NewPlan(set, n)
			if err != nil {
				b.Fatal(err)
			}
			dbs, order := benchScatter(b, plan, db)
			var critTotal time.Duration
			var violations int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var slowest time.Duration
				sources := make([]Source, len(dbs))
				for s, sdb := range dbs {
					// Each simulated node has its own heap on a real
					// fleet; collect the previous node's garbage so its
					// GC pause doesn't land in this node's timed region.
					runtime.GC()
					t0 := time.Now()
					res := detect.Run(sdb, set.CFDs(), set.CINDs(), detect.Options{Parallel: 1})
					vs := resultWire(res)
					if d := time.Since(t0); d > slowest {
						slowest = d
					}
					sources[s] = &sliceSource{vs: vs}
				}
				runtime.GC()
				t0 := time.Now()
				merged, err := Merge(sources,
					func(sh int, v *stream.Violation) (detect.MergeKey, bool, error) {
						if !plan.Keep(sh, v.Constraint) {
							return detect.MergeKey{}, false, nil
						}
						k, err := order.Key(v)
						return k, err == nil, err
					},
					func(*stream.Violation) bool { return true })
				if err != nil {
					b.Fatal(err)
				}
				critTotal += slowest + time.Since(t0)
				violations = merged
			}
			if violations == 0 {
				b.Fatal("benchmark workload produced no violations; it is vacuous")
			}
			crit := critTotal / time.Duration(b.N)
			b.ReportMetric(float64(total)/crit.Seconds(), "tuples/s")
			b.ReportMetric(float64(violations), "violations")
		})
	}
}

// benchScatter is scatter without the testing.T plumbing cost mattering —
// it runs outside the timed region anyway.
func benchScatter(tb testing.TB, p *Plan, db *cind.Database) ([]*cind.Database, *Order) {
	tb.Helper()
	return scatter(tb, p, db)
}
