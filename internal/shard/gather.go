package shard

import (
	"errors"
	"fmt"
	"io"

	"cind/internal/detect"
	"cind/internal/stream"
)

// Source is one shard's violation stream — *stream.Decoder satisfies it.
// Next returns io.EOF after a clean terminal record; any other error marks
// the stream failed (truncated, or a shard-reported error).
type Source interface {
	Next() (stream.Violation, error)
}

// ErrStopped is returned by Merge when emit ended the merge early (a
// client limit, or the downstream writer failing) — not a stream failure,
// but not an exhausted merge either: per-shard counts must not be checked
// against trailers.
var ErrStopped = errors.New("shard: merge stopped by consumer")

// Merge k-way merges per-shard report-ordered violation streams into the
// single-node global report order and hands each violation to emit. keyOf
// reconstructs a violation's detect.MergeKey (and may veto it: keep false
// drops the violation, the ownership filter for constraints every shard
// reports identically). Streams must each be non-decreasing in key order —
// which a shard's report-order stream is under any Plan placement — and no
// two streams tie on a full key, so picking the smallest head (ties to the
// lowest shard) reproduces the global order exactly.
//
// Merge returns the number of violations emitted and the first failure:
// a source error (wrapped with its shard index), a keyOf error, or
// ErrStopped when emit returned false. A nil error means every stream
// ended cleanly (io.EOF) and everything kept was emitted.
func Merge(sources []Source, keyOf func(shard int, v *stream.Violation) (detect.MergeKey, bool, error), emit func(*stream.Violation) bool) (int64, error) {
	type head struct {
		v   stream.Violation
		key detect.MergeKey
		ok  bool
	}
	heads := make([]head, len(sources))

	// advance refills heads[i] with the next kept violation of source i.
	advance := func(i int) error {
		for {
			v, err := sources[i].Next()
			if err == io.EOF {
				heads[i].ok = false
				return nil
			}
			if err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			key, keep, err := keyOf(i, &v)
			if err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			if !keep {
				continue
			}
			heads[i] = head{v: v, key: key, ok: true}
			return nil
		}
	}

	for i := range sources {
		if err := advance(i); err != nil {
			return 0, err
		}
	}
	var n int64
	for {
		min := -1
		for i := range heads {
			if !heads[i].ok {
				continue
			}
			if min < 0 || heads[i].key.Less(heads[min].key) {
				min = i
			}
		}
		if min < 0 {
			return n, nil
		}
		if !emit(&heads[min].v) {
			return n, ErrStopped
		}
		n++
		if err := advance(min); err != nil {
			return n, err
		}
	}
}
