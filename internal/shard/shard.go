// Package shard partitions one dataset across N shard servers and merges
// their violation streams back into the single-node order — the
// scatter-gather layer behind cindserve's router mode.
//
// The paper's detection semantics are what make hash partitioning exact
// rather than approximate: a CFD violation is witnessed by a pair of
// tuples that agree on the embedded FD's LHS attributes X, so any
// partitioning under which an entire X projection group lands on one
// shard preserves every pair; a CIND violation is witnessed by one LHS
// tuple whose demanded RHS match is absent, so any partitioning under
// which each shard sees the full RHS relation preserves every anti-join
// answer. Plan encodes exactly those two placement rules:
//
//   - a relation that appears on the RHS of any CIND is replicated to
//     every shard (the cross-shard anti-join stays local);
//   - otherwise a relation with CFDs is hash-partitioned on the
//     intersection of its CFDs' X attribute sets — violating pairs agree
//     on every X, hence on the intersection, so each X group of each CFD
//     is shard-local. An empty intersection forces replication;
//   - a relation driving no CFD is hash-partitioned on the full tuple.
//
// A constraint whose driving relation (the CFD's relation, the CIND's LHS
// relation) is partitioned has its violations distributed across shards,
// each shard holding a key-ordered subsequence; a constraint whose driving
// relation is replicated is reported identically by every shard, so shard
// 0 is designated its owner and the gather drops the other shards' copies.
//
// Order assigns tuples the same insertion ranks a single node's instance
// would (instances keep insertion order; deletes preserve it), which is
// what lets Merge reconstruct a detect.MergeKey for every wire violation
// and k-way merge the per-shard report-ordered streams into the exact
// global report order — sharded ≡ single-node, violation for violation.
package shard

import (
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"

	cind "cind"

	"cind/internal/types"
)

// Placement says where one relation's tuples live.
type Placement struct {
	// Partitioned is true when the relation is hash-partitioned; false
	// means every shard holds a full replica.
	Partitioned bool
	// Cols are the projection columns (sorted schema indices) the
	// partition hash covers. Empty unless Partitioned.
	Cols []int
}

// xset is one distinct (relation, sorted X columns) CFD grouping — the
// engine's detection-group identity, which Order tracks first-seen ranks
// for.
type xset struct {
	rel  string
	cols []int
}

// conInfo is the per-constraint routing metadata Plan precomputes.
type conInfo struct {
	kind     int // 0 CFD, 1 CIND — detect.MergeKey.Kind
	idx      int // index within the kind, input order
	rel      string
	ownerAll bool // driving relation partitioned: every shard owns a slice
	xs       int  // CFD: index into Plan.xsets; -1 for a CIND
}

// Plan is the sharding layout of one constraint set over n shards:
// relation placements, per-constraint ownership, and the X-set table the
// order tracker maintains group ranks for. Immutable after NewPlan.
type Plan struct {
	set *cind.ConstraintSet
	n   int

	placements map[string]Placement
	cons       map[string]*conInfo
	xsets      []xset
	relXsets   map[string][]int // relation -> indices into xsets
}

// NewPlan computes the layout for set over n shards. n must be >= 1.
func NewPlan(set *cind.ConstraintSet, n int) (*Plan, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: plan over %d shards", n)
	}
	p := &Plan{
		set:        set,
		n:          n,
		placements: make(map[string]Placement),
		cons:       make(map[string]*conInfo),
		relXsets:   make(map[string][]int),
	}
	sch := set.Schema()

	rhs := make(map[string]bool)
	for _, c := range set.CINDs() {
		rhs[c.RHSRel] = true
	}
	// xAttrs[rel] is the running intersection of X attribute sets of the
	// CFDs on rel; nil means no CFD seen yet.
	xAttrs := make(map[string]map[string]bool)
	for _, c := range set.CFDs() {
		cur := make(map[string]bool, len(c.X))
		for _, a := range c.X {
			cur[a] = true
		}
		if prev, ok := xAttrs[c.Rel]; ok {
			for a := range prev {
				if !cur[a] {
					delete(prev, a)
				}
			}
		} else {
			xAttrs[c.Rel] = cur
		}
	}
	for _, rel := range sch.Relations() {
		name := rel.Name()
		switch {
		case rhs[name]:
			p.placements[name] = Placement{}
		case xAttrs[name] != nil:
			inter := xAttrs[name]
			if len(inter) == 0 {
				// CFDs with disjoint X sets: no column set keeps every X
				// group whole, so the relation must be replicated.
				p.placements[name] = Placement{}
				continue
			}
			attrs := make([]string, 0, len(inter))
			for a := range inter {
				attrs = append(attrs, a)
			}
			cols := rel.Cols(attrs)
			sort.Ints(cols)
			p.placements[name] = Placement{Partitioned: true, Cols: cols}
		default:
			cols := make([]int, rel.Arity())
			for i := range cols {
				cols[i] = i
			}
			p.placements[name] = Placement{Partitioned: true, Cols: cols}
		}
	}

	xsetIdx := make(map[string]int)
	for i, c := range set.CFDs() {
		rel, _ := sch.Relation(c.Rel)
		cols := rel.Cols(c.X)
		sort.Ints(cols)
		key := c.Rel + "\x00" + fmt.Sprint(cols)
		xs, ok := xsetIdx[key]
		if !ok {
			xs = len(p.xsets)
			xsetIdx[key] = xs
			p.xsets = append(p.xsets, xset{rel: c.Rel, cols: cols})
			p.relXsets[c.Rel] = append(p.relXsets[c.Rel], xs)
		}
		if _, dup := p.cons[c.ID]; dup {
			return nil, fmt.Errorf("shard: duplicate constraint id %q", c.ID)
		}
		p.cons[c.ID] = &conInfo{kind: 0, idx: i, rel: c.Rel,
			ownerAll: p.placements[c.Rel].Partitioned, xs: xs}
	}
	for i, c := range set.CINDs() {
		if _, dup := p.cons[c.ID]; dup {
			return nil, fmt.Errorf("shard: duplicate constraint id %q", c.ID)
		}
		p.cons[c.ID] = &conInfo{kind: 1, idx: i, rel: c.LHSRel,
			ownerAll: p.placements[c.LHSRel].Partitioned, xs: -1}
	}
	return p, nil
}

// Shards returns the shard count the plan was computed for.
func (p *Plan) Shards() int { return p.n }

// Set returns the constraint set the plan routes.
func (p *Plan) Set() *cind.ConstraintSet { return p.set }

// Placement returns the placement of relation rel (the zero Placement —
// replicated — for an unknown relation, which NewPlan never produces for a
// schema relation).
func (p *Plan) Placement(rel string) Placement { return p.placements[rel] }

// ShardOf returns the shard a tuple of rel lives on, or -1 when the
// relation is replicated (the tuple lives on every shard).
func (p *Plan) ShardOf(rel string, t cind.Tuple) int {
	pl, ok := p.placements[rel]
	if !ok || !pl.Partitioned {
		return -1
	}
	h := fnv.New64a()
	var scratch [64]byte
	b := scratch[:0]
	for _, c := range pl.Cols {
		b = types.AppendKey(b[:0], t[c])
		h.Write(b)
	}
	return int(h.Sum64() % uint64(p.n))
}

// Keep reports whether a violation of the given constraint arriving from
// the given shard belongs in the merged stream: always, for a constraint
// whose violations are partitioned; only from shard 0 — the designated
// owner — for a constraint every shard reports identically because its
// driving relation is replicated.
func (p *Plan) Keep(shard int, constraintID string) bool {
	ci, ok := p.cons[constraintID]
	if !ok {
		return false
	}
	return ci.ownerAll || shard == 0
}

// DataDir namespaces a shared data-directory root by shard index, so two
// router-managed shards started with the same -data DIR never collide on a
// dataset's WAL/snapshot directory.
func DataDir(root string, idx int) string {
	return filepath.Join(root, fmt.Sprintf("shard%d", idx))
}
