package stream

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"cind/internal/wal"
)

// ErrTruncated reports a stream that ended without its terminal record —
// the bytes received are valid violations, but the server never said the
// stream was complete (connection cut, proxy timeout, crashed server).
var ErrTruncated = errors.New("stream: truncated violation stream (no end-of-stream trailer)")

// RemoteError is the server's own terminal error record: the stream ended
// because the server cancelled it (client-observed Drain, engine
// cancellation), and everything before it was delivered intact.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "stream: server reported: " + e.Msg }

// Decoder reads one violations stream in any negotiated encoding and
// yields violations in stream order. Next returns io.EOF exactly when the
// stream carried its clean end-of-stream trailer and the trailer count
// matches the violations received; a server-side cancellation surfaces as
// *RemoteError, a cut connection as ErrTruncated, and corruption (binary
// CRC mismatch, malformed JSON) as a descriptive error. The terminal
// result is sticky.
type Decoder struct {
	enc Encoding
	br  *bufio.Reader

	queue []Violation
	qpos  int
	seen  int64
	count int64
	fin   bool
	ferr  error

	jsonRead  bool
	jsonFinal error

	// Binary-decode scratch, reused across frames: the payload buffer and
	// the batch reader with its intern cache and witness slabs.
	payload bytes.Buffer
	batch   batchReader
}

// NewDecoder wraps r, which must carry a stream in encoding enc (match it
// to the response Content-Type).
func NewDecoder(r io.Reader, enc Encoding) *Decoder {
	return &Decoder{enc: enc, br: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next violation, or the stream's terminal result.
func (d *Decoder) Next() (Violation, error) {
	for {
		if d.qpos < len(d.queue) {
			v := d.queue[d.qpos]
			d.qpos++
			return v, nil
		}
		if d.fin {
			return Violation{}, d.ferr
		}
		d.queue = d.queue[:0]
		d.qpos = 0
		var err error
		switch d.enc {
		case Binary:
			err = d.fillBinary()
		case JSONArray:
			err = d.fillJSON()
		default:
			err = d.fillNDJSON()
		}
		if err != nil {
			d.fin, d.ferr = true, err
		}
	}
}

// Count reports the trailer's violation count; valid after Next returned
// io.EOF.
func (d *Decoder) Count() int64 { return d.count }

func (d *Decoder) checkTrailer() error {
	if d.count != d.seen {
		return fmt.Errorf("stream: trailer count %d != %d violations received", d.count, d.seen)
	}
	return io.EOF
}

// fillNDJSON consumes one line: a violation, the error line, or the
// trailer.
func (d *Decoder) fillNDJSON() error {
	line, rerr := d.br.ReadBytes('\n')
	trim := bytes.TrimSpace(line)
	if len(trim) == 0 {
		if rerr != nil {
			return ErrTruncated // EOF before any terminal line
		}
		return nil // blank line between records: skip
	}
	var probe struct {
		Violation
		Done  *bool   `json:"done"`
		Count *int64  `json:"count"`
		Error *string `json:"error"`
	}
	if err := json.Unmarshal(trim, &probe); err != nil {
		return fmt.Errorf("stream: bad ndjson line: %v", err)
	}
	switch {
	case probe.Error != nil:
		return &RemoteError{Msg: *probe.Error}
	case probe.Done != nil && *probe.Done:
		if probe.Count != nil {
			d.count = *probe.Count
		}
		return d.checkTrailer()
	case probe.Kind == "":
		return fmt.Errorf("stream: line %q is neither a violation, an error, nor the trailer", trim)
	default:
		d.queue = append(d.queue, probe.Violation)
		d.seen++
		return nil
	}
}

// fillJSON reads the whole body once; the terminal result is computed up
// front and handed out after the queue drains.
func (d *Decoder) fillJSON() error {
	if d.jsonRead {
		return d.jsonFinal
	}
	d.jsonRead = true
	data, err := io.ReadAll(d.br)
	if err != nil {
		return err
	}
	var body struct {
		Violations []Violation `json:"violations"`
		Done       bool        `json:"done"`
		Count      *int64      `json:"count"`
		Error      *string     `json:"error"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		// A cut connection leaves an unterminated document.
		return fmt.Errorf("%w (bad json body: %v)", ErrTruncated, err)
	}
	d.queue = append(d.queue, body.Violations...)
	d.seen = int64(len(body.Violations))
	switch {
	case body.Error != nil:
		d.jsonFinal = &RemoteError{Msg: *body.Error}
	case !body.Done:
		d.jsonFinal = ErrTruncated
	default:
		if body.Count != nil {
			d.count = *body.Count
		}
		d.jsonFinal = d.checkTrailer()
	}
	return nil
}

// fillBinary consumes one frame: a 'V' violation batch, the 'E' error
// record, or the 'Z' trailer.
func (d *Decoder) fillBinary() error {
	var hdr [8]byte
	if _, err := io.ReadFull(d.br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return ErrTruncated
		}
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n == 0 {
		return errors.New("stream: empty frame (missing tag byte)")
	}
	if int64(n) > wal.MaxRecord {
		return fmt.Errorf("stream: frame of %d bytes exceeds the %d-byte record cap", n, int64(wal.MaxRecord))
	}
	// Copy rather than pre-allocate n bytes: a corrupt length field only
	// ever costs as much memory as the stream actually carries. The buffer
	// is a reused field, so steady-state frames cost no allocation.
	d.payload.Reset()
	if _, err := io.CopyN(&d.payload, d.br, int64(n)); err != nil {
		return ErrTruncated
	}
	payload := d.payload.Bytes()
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return errors.New("stream: frame CRC mismatch")
	}
	switch payload[0] {
	case 'V':
		base := len(d.queue)
		vs, err := d.batch.decode(payload[1:], d.queue)
		if err != nil {
			return err
		}
		d.queue = vs
		d.seen += int64(len(vs) - base)
		return nil
	case 'E':
		return &RemoteError{Msg: string(payload[1:])}
	case 'Z':
		c, k := binary.Uvarint(payload[1:])
		if k <= 0 || k != len(payload)-1 {
			return errors.New("stream: bad trailer frame")
		}
		d.count = int64(c)
		return d.checkTrailer()
	default:
		return fmt.Errorf("stream: unknown frame tag 0x%02x", payload[0])
	}
}

// DecodeAll drains a complete stream, returning its violations. The error
// is nil only for a clean, trailer-terminated stream.
func DecodeAll(r io.Reader, enc Encoding) ([]Violation, error) {
	d := NewDecoder(r, enc)
	var out []Violation
	for {
		v, err := d.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, v)
	}
}
