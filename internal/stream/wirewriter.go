package stream

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"cind/internal/wal"
)

// WireWriter streams already-decoded wire violations to out in one
// negotiated encoding — the relay half of a scatter-gather router, which
// receives stream.Violation values from per-shard Decoders and must
// re-emit them to the client byte-compatibly with what a single-node
// Writer would have produced. It is synchronous (the caller's loop is a
// network-bound merge, not the detection hot path, so there is nothing to
// move off of it) but batches flushes the same way: the first violation is
// flushed eagerly, after that at FlushBytes boundaries.
//
// The encoded forms are identical to Writer's: NDJSON lines and trailer
// byte-for-byte, the JSONArray document byte-for-byte, and Binary 'V'/'Z'/
// 'E' frames that only may differ in batch boundaries (the Decoder is
// indifferent to those).
type WireWriter struct {
	out   io.Writer
	fl    Flusher
	enc   Encoding
	buf   bytes.Buffer
	jenc  *json.Encoder
	werr  error
	count int64

	flushBytes int
	started    bool // JSONArray prologue written
	closed     bool
}

// NewWireWriter returns a wire-level stream writer over out. fl may be nil.
func NewWireWriter(out io.Writer, fl Flusher, enc Encoding) *WireWriter {
	w := &WireWriter{out: out, fl: fl, enc: enc, flushBytes: DefaultFlushBytes}
	if enc == Binary {
		w.buf.WriteByte('V')
	}
	if enc == NDJSON {
		w.jenc = json.NewEncoder(&w.buf)
	}
	return w
}

// Send encodes one violation. It returns false once the underlying writer
// has failed (the client is gone) — the caller should stop merging.
func (w *WireWriter) Send(v *Violation) bool {
	if w.werr != nil || w.closed {
		return false
	}
	switch w.enc {
	case JSONArray:
		if !w.started {
			w.buf.WriteString(`{"violations":[`)
			w.started = true
		} else {
			w.buf.WriteByte(',')
		}
		b, err := json.Marshal(v)
		if err != nil {
			w.werr = err
			return false
		}
		w.buf.Write(b)
	case Binary:
		b := w.buf.AvailableBuffer()
		w.buf.Write(appendBinaryWire(b, v))
	default:
		if err := w.jenc.Encode(v); err != nil {
			w.werr = err
			return false
		}
	}
	w.count++
	if w.count == 1 || w.buffered() >= w.flushBytes {
		w.flush()
	}
	return w.werr == nil
}

// Close writes the encoding's clean end-of-stream trailer and flushes. It
// returns the first write error the stream hit, if any. Idempotent; the
// first of Close/CloseError wins.
func (w *WireWriter) Close() error { return w.finish("") }

// CloseError ends the stream with the encoding's terminal error record —
// the signal that the stream is truncated, not complete.
func (w *WireWriter) CloseError(msg string) error {
	if msg == "" {
		msg = "stream aborted"
	}
	return w.finish(msg)
}

// Count returns the number of violations written so far.
func (w *WireWriter) Count() int64 { return w.count }

func (w *WireWriter) buffered() int {
	if w.enc == Binary {
		return w.buf.Len() - 1 // the standing 'V' tag is not payload
	}
	return w.buf.Len()
}

func (w *WireWriter) flush() {
	if w.werr != nil {
		return
	}
	var err error
	switch w.enc {
	case Binary:
		if w.buf.Len() <= 1 {
			return
		}
		_, err = wal.AppendFrame(w.out, w.buf.Bytes())
		w.buf.Reset()
		w.buf.WriteByte('V')
	default:
		if w.buf.Len() == 0 {
			return
		}
		_, err = w.out.Write(w.buf.Bytes())
		w.buf.Reset()
	}
	if err != nil {
		w.werr = err
		return
	}
	if w.fl != nil {
		w.fl.Flush()
	}
}

func (w *WireWriter) finish(endErr string) error {
	if w.closed {
		return w.werr
	}
	w.closed = true
	switch w.enc {
	case Binary:
		w.flush()
		if w.werr != nil {
			return w.werr
		}
		var payload []byte
		if endErr != "" {
			if len(endErr) > wal.MaxRecord-1 {
				endErr = endErr[:wal.MaxRecord-1]
			}
			payload = append([]byte{'E'}, endErr...)
		} else {
			var tmp [binary.MaxVarintLen64]byte
			n := binary.PutUvarint(tmp[:], uint64(w.count))
			payload = append([]byte{'Z'}, tmp[:n]...)
		}
		if _, err := wal.AppendFrame(w.out, payload); err != nil {
			w.werr = err
			return w.werr
		}
	case JSONArray:
		if !w.started {
			w.buf.WriteString(`{"violations":[`)
		}
		w.buf.WriteByte(']')
		if endErr != "" {
			b, _ := json.Marshal(endErr)
			w.buf.WriteString(`,"error":`)
			w.buf.Write(b)
			w.buf.WriteString("}\n")
		} else {
			fmt.Fprintf(&w.buf, `,"done":true,"count":%d}`+"\n", w.count)
		}
		if _, err := w.out.Write(w.buf.Bytes()); err != nil {
			w.buf.Reset()
			w.werr = err
			return w.werr
		}
		w.buf.Reset()
	default:
		if endErr != "" {
			b, _ := json.Marshal(endErr)
			fmt.Fprintf(&w.buf, `{"error":%s}`+"\n", b)
		} else {
			fmt.Fprintf(&w.buf, `{"done":true,"count":%d}`+"\n", w.count)
		}
		if _, err := w.out.Write(w.buf.Bytes()); err != nil {
			w.buf.Reset()
			w.werr = err
			return w.werr
		}
		w.buf.Reset()
	}
	if w.fl != nil {
		w.fl.Flush()
	}
	return w.werr
}
