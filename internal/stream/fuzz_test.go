package stream

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// frame builds one CRC-correct binary frame around payload — the fuzz
// seeds' own tiny encoder, so the seeds exercise the tag dispatch and the
// batch codec, not just the CRC gate.
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

func uv(u uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], u)
	return tmp[:n]
}

func str(s string) []byte {
	return append(uv(uint64(len(s))), s...)
}

// seedStreams returns hand-built binary streams covering the protocol's
// corners: clean, error-terminated, truncated, and corrupt.
func seedStreams() [][]byte {
	// One violation: kind, constraint, relation, row 0 (zigzag), one
	// witness tuple of two values.
	var v bytes.Buffer
	v.Write(str("cfd"))
	v.Write(str("phi"))
	v.Write(str("r"))
	v.WriteByte(0) // zigzag varint 0
	v.Write(uv(1))
	v.Write(uv(2))
	v.Write(str("a"))
	v.Write(str("b"))
	batch := append([]byte{'V'}, v.Bytes()...)

	clean := append(frame(batch), frame(append([]byte{'Z'}, uv(1)...))...)
	empty := frame(append([]byte{'Z'}, uv(0)...))
	errTerm := append(frame(batch), frame(append([]byte{'E'}, "context canceled"...))...)
	truncated := clean[:len(clean)-5]
	corrupt := bytes.Clone(clean)
	corrupt[9] ^= 0xFF
	badTag := frame([]byte{'Q', 1, 2, 3})
	badCount := append(frame(batch), frame(append([]byte{'Z'}, uv(9)...))...)
	return [][]byte{clean, empty, errTerm, truncated, corrupt, badTag, badCount, {}, []byte("garbage")}
}

// FuzzStreamDecode hammers the binary frame decoder: arbitrary bytes must
// never panic, never allocate past what the input carries, and decoding
// must be deterministic — the same bytes yield the same violations and the
// same terminal state twice.
func FuzzStreamDecode(f *testing.F) {
	for _, seed := range seedStreams() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		vs1, err1 := DecodeAll(bytes.NewReader(data), Binary)
		vs2, err2 := DecodeAll(bytes.NewReader(data), Binary)
		if (err1 == nil) != (err2 == nil) || len(vs1) != len(vs2) {
			t.Fatalf("non-deterministic decode: (%d, %v) vs (%d, %v)", len(vs1), err1, len(vs2), err2)
		}
		if err1 == nil {
			// A clean decode means a trailer was present and its count
			// matched; pin the invariant through the Decoder surface too.
			d := NewDecoder(bytes.NewReader(data), Binary)
			n := 0
			for {
				_, err := d.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("DecodeAll clean but Next failed: %v", err)
				}
				n++
			}
			if int64(n) != d.Count() {
				t.Fatalf("decoded %d violations, trailer says %d", n, d.Count())
			}
		}
	})
}

// TestRegenerateFuzzCorpus rewrites the committed seed corpus under
// testdata/fuzz/FuzzStreamDecode when STREAM_REGEN_CORPUS=1 — run it after
// changing the binary format, commit the result. Otherwise it verifies the
// committed corpus exists and parses.
func TestRegenerateFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzStreamDecode")
	if os.Getenv("STREAM_REGEN_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seedStreams() {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
			name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("committed fuzz corpus missing (run with STREAM_REGEN_CORPUS=1): %v", err)
	}
	if len(ents) == 0 {
		t.Fatal("fuzz corpus directory is empty")
	}
}
