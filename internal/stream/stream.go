// Package stream is the violations wire layer: the negotiated response
// encodings of GET /datasets/{name}/violations, a batching writer that
// keeps encoding and flushing off the detection hot loop, and the decoder
// clients and tests consume streams through.
//
// Three encodings are served, selected by the request's Accept header
// (Negotiate); NDJSON stays the default so existing clients see no change:
//
//   - NDJSON (application/x-ndjson): one JSON violation per line, ending
//     with a trailer line {"done":true,"count":N} — or, after a
//     cancellation, a final {"error":...} line — so a complete stream is
//     distinguishable from a truncated one.
//   - JSONArray (application/json): one JSON document
//     {"violations":[...],"done":true,"count":N} (an "error" member
//     replaces done/count after a cancellation) for clients that want a
//     single parseable body.
//   - Binary (application/x-cind-frames): length-prefixed frames in the
//     WAL's [u32le len][u32le IEEE CRC32][payload] framing discipline
//     (internal/wal), so the same torn-tail properties hold: corruption is
//     detected, never misparsed. Each payload is a one-byte tag plus body —
//     'V' a batch of violations (uvarint-framed strings), 'E' a terminal
//     error message, 'Z' the end-of-stream trailer carrying the violation
//     count. A stream that does not end in a 'Z' or 'E' frame is truncated.
//
// In every encoding the Decoder surfaces exactly one of three terminal
// states: clean end (io.EOF, with the trailer count cross-checked against
// the violations received), a server-reported error (*RemoteError), or
// truncation (ErrTruncated).
package stream

import (
	"fmt"
	"strings"

	"cind/internal/detect"
)

// Encoding identifies one negotiated violations-stream encoding.
type Encoding uint8

const (
	// NDJSON is the default: one violation JSON object per line plus a
	// trailer line.
	NDJSON Encoding = iota
	// JSONArray is a single JSON document wrapping the violation array.
	JSONArray
	// Binary is CRC-framed batches in the WAL framing discipline.
	Binary
)

// Content types served and negotiated. ContentTypeBinary is cindserve's
// own: the WAL frame discipline applied to a response body.
const (
	ContentTypeNDJSON = "application/x-ndjson"
	ContentTypeJSON   = "application/json"
	ContentTypeBinary = "application/x-cind-frames"
)

// ContentType returns the Content-Type header value for the encoding.
func (e Encoding) ContentType() string {
	switch e {
	case JSONArray:
		return ContentTypeJSON
	case Binary:
		return ContentTypeBinary
	}
	return ContentTypeNDJSON
}

// String renders the encoding as its flag spelling (cindviolate -encoding).
func (e Encoding) String() string {
	switch e {
	case JSONArray:
		return "json"
	case Binary:
		return "binary"
	}
	return "ndjson"
}

// ParseEncoding parses the flag spelling: "ndjson", "json" or "binary".
func ParseEncoding(s string) (Encoding, error) {
	switch s {
	case "ndjson":
		return NDJSON, nil
	case "json":
		return JSONArray, nil
	case "binary":
		return Binary, nil
	}
	return NDJSON, fmt.Errorf("stream: bad encoding %q (want ndjson, json or binary)", s)
}

// Negotiate maps an Accept header to the encoding served. The first
// recognized media type in the list wins (quality parameters are ignored —
// the list order is the preference order for every client in practice);
// an empty, wildcard or unrecognized Accept serves NDJSON, so existing
// clients and plain curl see exactly the pre-negotiation behavior.
func Negotiate(accept string) Encoding {
	for _, part := range strings.Split(accept, ",") {
		mt := part
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = mt[:i]
		}
		switch strings.ToLower(strings.TrimSpace(mt)) {
		case ContentTypeNDJSON:
			return NDJSON
		case ContentTypeJSON:
			return JSONArray
		case ContentTypeBinary:
			return Binary
		}
	}
	return NDJSON
}

// Violation is the wire form of one violation, identical across encodings:
// the JSON member names below for NDJSON and JSONArray, the same fields in
// frame order for Binary. Witness tuples are value arrays in schema column
// order; for a CFD the witness is the offending pair [t1, t2] (t1 == t2
// for single-tuple violations), for a CIND the single unmatched LHS tuple.
type Violation struct {
	Kind       string     `json:"kind"`
	Constraint string     `json:"constraint"`
	Relation   string     `json:"relation"`
	Row        int        `json:"row"`
	Witness    [][]string `json:"witness"`
}

// Convert renders an engine violation into its wire form.
func Convert(v detect.Violation) Violation {
	ts := v.Witness()
	out := Violation{
		Kind:       v.Kind().String(),
		Constraint: v.ConstraintID(),
		Relation:   v.Relation(),
		Row:        v.Row(),
		Witness:    make([][]string, len(ts)),
	}
	for i, t := range ts {
		row := make([]string, len(t))
		for j, val := range t {
			row[j] = val.String()
		}
		out.Witness[i] = row
	}
	return out
}
