package stream

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"cind/internal/detect"
	"cind/internal/wal"
)

// Flusher is the subset of http.Flusher the Writer drives; nil disables
// flushing (plain buffers in tests and benchmarks).
type Flusher interface{ Flush() }

// Options tunes the Writer's batching and flush policy. The zero value
// selects the defaults below.
type Options struct {
	// FlushBytes flushes the encode buffer to the client once it holds this
	// many bytes.
	FlushBytes int
	// FlushInterval flushes buffered bytes this long after the first one
	// arrived, bounding how stale a partially-filled buffer may get on a
	// slow violation stream.
	FlushInterval time.Duration
	// BatchSize is the producer micro-batch: Send hands violations to the
	// encoder goroutine in groups of this size, so the detection hot loop
	// pays one mutex handoff per batch, not per violation.
	BatchSize int
	// PushInterval bounds how long a violation may sit in a partially
	// filled micro-batch before Send pushes it anyway.
	PushInterval time.Duration
}

// Defaults: flush at 32KiB or 50ms, whichever first; micro-batches of 256
// pushed at least every 5ms.
const (
	DefaultFlushBytes    = 32 << 10
	DefaultFlushInterval = 50 * time.Millisecond
	defaultBatchSize     = 256
	defaultPushInterval  = 5 * time.Millisecond
)

// maxPooledBuf caps the encode buffers returned to the pool, so one stream
// with a pathological single violation cannot pin a huge buffer forever.
const maxPooledBuf = 1 << 20

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Writer streams violations to out in one negotiated encoding, moving all
// conversion, encoding and flushing off the caller's loop: Send appends to
// a micro-batch and hands full batches to a per-stream encoder goroutine;
// the goroutine encodes, flushes at FlushBytes or FlushInterval (whichever
// first, with the very first violation flushed eagerly so first-violation
// latency stays one detection group), and writes the encoding's terminal
// record when the stream closes.
//
// Send and Close/CloseError must be called from one goroutine (the
// iterator loop). Close and CloseError are idempotent; the first call wins.
type Writer struct {
	out  io.Writer
	fl   Flusher
	enc  Encoding
	opts Options

	// Producer-side state, guarded by the single-caller contract.
	micro    []detect.Violation
	lastPush time.Time
	okCached bool

	mu      sync.Mutex
	full    sync.Cond            // producer waits here while pending is at capacity
	pending [][]detect.Violation // full micro-batches awaiting encode
	spare   [][]detect.Violation // spent batch buffers for the producer to reuse
	closed  bool
	endErr  string
	werr    error

	wake chan struct{}
	done chan struct{}

	scratch []byte // encoder-goroutine scratch for binary violation bodies

	count int64 // violations written; read via Count after Close
}

// NewWriter starts a stream writer over out. fl may be nil; opts zero
// fields take the defaults.
func NewWriter(out io.Writer, fl Flusher, enc Encoding, opts Options) *Writer {
	if opts.FlushBytes <= 0 {
		opts.FlushBytes = DefaultFlushBytes
	}
	if opts.FlushInterval <= 0 {
		opts.FlushInterval = DefaultFlushInterval
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = defaultBatchSize
	}
	if opts.PushInterval <= 0 {
		opts.PushInterval = defaultPushInterval
	}
	w := &Writer{
		out: out, fl: fl, enc: enc, opts: opts,
		micro:    make([]detect.Violation, 0, opts.BatchSize),
		lastPush: time.Now(),
		okCached: true,
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	w.full.L = &w.mu
	go w.run()
	return w
}

// Send queues one violation. It returns false once the underlying writer
// has failed (the client is gone) — the caller should stop iterating. The
// report is conservative by up to one micro-batch: a failure is observed at
// the next batch handoff, which PushInterval bounds.
func (w *Writer) Send(v detect.Violation) bool {
	w.micro = append(w.micro, v)
	if len(w.micro) >= w.opts.BatchSize || time.Since(w.lastPush) >= w.opts.PushInterval {
		return w.push()
	}
	return w.okCached
}

// maxPendingBatches bounds the encode backlog: once the encoder is this
// many micro-batches behind, push blocks until it catches up. This is the
// writer's backpressure — a fast engine cannot buffer an entire stream
// ahead of a slow client, memory per stream stays bounded, and
// cancellation (Drain, disconnect) still reaches a stream mid-flight
// instead of finding it already fully buffered.
const maxPendingBatches = 4

// push hands the micro-batch slice itself to the encoder goroutine — no
// per-violation copy — takes a recycled buffer for the next batch, and
// samples writer health. It blocks while the encode backlog is full.
func (w *Writer) push() bool {
	w.lastPush = time.Now()
	w.mu.Lock()
	for len(w.pending) >= maxPendingBatches && !w.closed && w.werr == nil {
		w.full.Wait()
	}
	if len(w.micro) > 0 && !w.closed {
		w.pending = append(w.pending, w.micro)
		if n := len(w.spare); n > 0 {
			w.micro = w.spare[n-1][:0]
			w.spare = w.spare[:n-1]
		} else {
			w.micro = make([]detect.Violation, 0, w.opts.BatchSize)
		}
	}
	ok := w.werr == nil && !w.closed
	w.mu.Unlock()
	w.okCached = ok
	select {
	case w.wake <- struct{}{}:
	default:
	}
	return ok
}

// Close pushes any buffered violations, writes the encoding's clean
// end-of-stream trailer, flushes, and waits for the encoder goroutine to
// exit. It returns the first write error the stream hit, if any.
func (w *Writer) Close() error { return w.finish("") }

// CloseError ends the stream with the encoding's terminal error record —
// the signal that the stream is truncated by cancellation, not complete.
func (w *Writer) CloseError(msg string) error {
	if msg == "" {
		msg = "stream aborted"
	}
	return w.finish(msg)
}

// Count returns the number of violations written; valid after Close or
// CloseError has returned.
func (w *Writer) Count() int64 { return w.count }

func (w *Writer) finish(endErr string) error {
	w.mu.Lock()
	if !w.closed {
		w.closed = true
		w.endErr = endErr
		if len(w.micro) > 0 {
			w.pending = append(w.pending, w.micro)
			w.micro = nil
		}
	}
	w.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
	<-w.done
	w.okCached = false
	w.mu.Lock()
	err := w.werr
	w.mu.Unlock()
	return err
}

func (w *Writer) setWerr(err error) {
	w.mu.Lock()
	if w.werr == nil {
		w.werr = err
	}
	w.mu.Unlock()
	w.full.Broadcast() // a blocked producer must see the failure, not wait
}

// run is the encoder goroutine: drain pending batches, encode, flush by
// size or deadline, emit the terminal record on close.
func (w *Writer) run() {
	defer close(w.done)
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer func() {
		if buf.Cap() <= maxPooledBuf {
			buf.Reset()
			bufPool.Put(buf)
		}
	}()
	if w.enc == Binary {
		buf.WriteByte('V')
	}
	var jenc *json.Encoder
	if w.enc == NDJSON {
		jenc = json.NewEncoder(buf)
	}
	var timer *time.Timer
	var flushC <-chan time.Time
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	failed := false
	started := false // JSONArray prologue written
	var count int64
	for {
		w.mu.Lock()
		batches := w.pending
		w.pending = nil
		closed := w.closed
		endErr := w.endErr
		w.mu.Unlock()
		if len(batches) > 0 {
			w.full.Broadcast()
		}
		for _, batch := range batches {
			for i := range batch {
				if failed {
					break
				}
				if err := w.encodeOne(buf, jenc, &batch[i], &started); err != nil {
					w.setWerr(err)
					failed = true
					break
				}
				count++
				// The first violation is flushed eagerly: first-violation
				// latency stays one detection group, not one fill of the
				// buffer; after that, size governs.
				if count == 1 || w.buffered(buf) >= w.opts.FlushBytes {
					failed = w.flush(buf)
					flushC = nil
				}
			}
		}
		if len(batches) > 0 {
			// Recycle the spent batch buffers; the bound keeps a stalled
			// producer from accumulating arbitrarily many.
			w.mu.Lock()
			for _, b := range batches {
				if len(w.spare) < 4 && cap(b) > 0 {
					w.spare = append(w.spare, b[:0])
				}
			}
			w.mu.Unlock()
		}
		if closed {
			w.count = count
			if !failed {
				w.writeTerminal(buf, endErr, count, started)
			}
			return
		}
		if !failed && w.buffered(buf) > 0 && flushC == nil {
			if timer == nil {
				timer = time.NewTimer(w.opts.FlushInterval)
			} else {
				timer.Reset(w.opts.FlushInterval)
			}
			flushC = timer.C
		}
		select {
		case <-w.wake:
		case <-flushC:
			flushC = nil
			if !failed {
				failed = w.flush(buf)
			}
		}
	}
}

// buffered is the number of payload bytes awaiting a flush.
func (w *Writer) buffered(buf *bytes.Buffer) int {
	if w.enc == Binary {
		return buf.Len() - 1 // the standing 'V' tag is not payload
	}
	return buf.Len()
}

// encodeOne appends one violation to the encode buffer.
func (w *Writer) encodeOne(buf *bytes.Buffer, jenc *json.Encoder, v *detect.Violation, started *bool) error {
	switch w.enc {
	case JSONArray:
		if !*started {
			buf.WriteString(`{"violations":[`)
			*started = true
		} else {
			buf.WriteByte(',')
		}
		b, err := json.Marshal(Convert(*v))
		if err != nil {
			return err
		}
		buf.Write(b)
		return nil
	case Binary:
		w.scratch = appendBinaryViolation(w.scratch[:0], *v)
		buf.Write(w.scratch)
		return nil
	default:
		return jenc.Encode(Convert(*v))
	}
}

// flush sends the buffered payload to the client and reports failure. For
// Binary the buffer is one 'V' batch payload, framed exactly like a WAL
// record; the buffer is re-seeded with the tag for the next batch.
func (w *Writer) flush(buf *bytes.Buffer) bool {
	var err error
	switch w.enc {
	case Binary:
		if buf.Len() <= 1 {
			return false
		}
		_, err = wal.AppendFrame(w.out, buf.Bytes())
		buf.Reset()
		buf.WriteByte('V')
	default:
		if buf.Len() == 0 {
			return false
		}
		_, err = w.out.Write(buf.Bytes())
		buf.Reset()
	}
	if err != nil {
		w.setWerr(err)
		return true
	}
	if w.fl != nil {
		w.fl.Flush()
	}
	return false
}

// writeTerminal flushes what remains and writes the encoding's terminal
// record: the trailer (clean end, with the count) or the error record.
func (w *Writer) writeTerminal(buf *bytes.Buffer, endErr string, count int64, started bool) {
	switch w.enc {
	case Binary:
		if w.flush(buf) {
			return
		}
		var payload []byte
		if endErr != "" {
			if len(endErr) > wal.MaxRecord-1 {
				endErr = endErr[:wal.MaxRecord-1]
			}
			payload = append([]byte{'E'}, endErr...)
		} else {
			var tmp [binary.MaxVarintLen64]byte
			n := binary.PutUvarint(tmp[:], uint64(count))
			payload = append([]byte{'Z'}, tmp[:n]...)
		}
		if _, err := wal.AppendFrame(w.out, payload); err != nil {
			w.setWerr(err)
			return
		}
	case JSONArray:
		if !started {
			buf.WriteString(`{"violations":[`)
		}
		buf.WriteByte(']')
		if endErr != "" {
			b, _ := json.Marshal(endErr)
			buf.WriteString(`,"error":`)
			buf.Write(b)
			buf.WriteString("}\n")
		} else {
			fmt.Fprintf(buf, `,"done":true,"count":%d}`+"\n", count)
		}
		if _, err := w.out.Write(buf.Bytes()); err != nil {
			buf.Reset()
			w.setWerr(err)
			return
		}
		buf.Reset()
	default: // NDJSON: trailer line, or the errorWire-shaped error line
		if endErr != "" {
			b, _ := json.Marshal(endErr)
			fmt.Fprintf(buf, `{"error":%s}`+"\n", b)
		} else {
			fmt.Fprintf(buf, `{"done":true,"count":%d}`+"\n", count)
		}
		if _, err := w.out.Write(buf.Bytes()); err != nil {
			buf.Reset()
			w.setWerr(err)
			return
		}
		buf.Reset()
	}
	if w.fl != nil {
		w.fl.Flush()
	}
}
