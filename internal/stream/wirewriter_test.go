package stream

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"testing"
)

func wireFixture(n int) []Violation {
	out := make([]Violation, n)
	for i := range out {
		out[i] = Violation{
			Kind:       []string{"cfd", "cind"}[i%2],
			Constraint: fmt.Sprintf("phi%d", i%5),
			Relation:   "checking",
			Row:        i % 3,
			Witness:    [][]string{{fmt.Sprintf("%03d", i), "Cust", "Addr", "555", "NYC"}},
		}
	}
	return out
}

func TestWireWriterRoundTrip(t *testing.T) {
	for _, enc := range []Encoding{NDJSON, JSONArray, Binary} {
		t.Run(enc.String(), func(t *testing.T) {
			vs := wireFixture(7)
			var buf bytes.Buffer
			w := NewWireWriter(&buf, nil, enc)
			for i := range vs {
				if !w.Send(&vs[i]) {
					t.Fatalf("Send %d = false", i)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			if w.Count() != 7 {
				t.Fatalf("Count = %d, want 7", w.Count())
			}
			got, err := DecodeAll(&buf, enc)
			if err != nil {
				t.Fatalf("DecodeAll: %v", err)
			}
			if !reflect.DeepEqual(got, vs) {
				t.Fatalf("round trip diverged:\ngot  %+v\nwant %+v", got, vs)
			}
		})
	}
}

func TestWireWriterEmptyStream(t *testing.T) {
	for _, enc := range []Encoding{NDJSON, JSONArray, Binary} {
		var buf bytes.Buffer
		w := NewWireWriter(&buf, nil, enc)
		if err := w.Close(); err != nil {
			t.Fatalf("%s: %v", enc, err)
		}
		got, err := DecodeAll(&buf, enc)
		if err != nil {
			t.Fatalf("%s: DecodeAll: %v", enc, err)
		}
		if len(got) != 0 {
			t.Fatalf("%s: empty stream decoded %d violations", enc, len(got))
		}
	}
}

func TestWireWriterCloseError(t *testing.T) {
	for _, enc := range []Encoding{NDJSON, JSONArray, Binary} {
		var buf bytes.Buffer
		w := NewWireWriter(&buf, nil, enc)
		vs := wireFixture(2)
		for i := range vs {
			w.Send(&vs[i])
		}
		w.CloseError("shard 1 went away")
		_, err := DecodeAll(&buf, enc)
		var re *RemoteError
		if !errors.As(err, &re) {
			t.Fatalf("%s: DecodeAll err = %v, want RemoteError", enc, err)
		}
		if re.Msg != "shard 1 went away" {
			t.Fatalf("%s: relayed message %q", enc, re.Msg)
		}
	}
}

// TestWireWriterNDJSONBytesMatchWriter pins the relay promise: for the
// default encoding the router's re-encoded bytes must be exactly what a
// single node would have sent — same violation lines, same trailer.
func TestWireWriterNDJSONBytesMatchWriter(t *testing.T) {
	vs := wireFixture(5)
	var got bytes.Buffer
	w := NewWireWriter(&got, nil, NDJSON)
	for i := range vs {
		w.Send(&vs[i])
	}
	w.Close()

	var want bytes.Buffer
	for i := range vs {
		b, err := json.Marshal(&vs[i])
		if err != nil {
			t.Fatal(err)
		}
		want.Write(b)
		want.WriteByte('\n')
	}
	fmt.Fprintf(&want, `{"done":true,"count":%d}`+"\n", len(vs))
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("NDJSON bytes diverge:\ngot  %q\nwant %q", got.String(), want.String())
	}
}

func TestWireWriterSendAfterCloseRefused(t *testing.T) {
	var buf bytes.Buffer
	w := NewWireWriter(&buf, nil, NDJSON)
	w.Close()
	v := wireFixture(1)[0]
	if w.Send(&v) {
		t.Fatal("Send after Close = true")
	}
	if w.Count() != 0 {
		t.Fatalf("Count after refused Send = %d", w.Count())
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ budget int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, errors.New("wire down")
	}
	f.budget -= len(p)
	return len(p), nil
}

func TestWireWriterReportsWriteFailure(t *testing.T) {
	// Budget 0: the eager first-violation flush fails immediately.
	w := NewWireWriter(&failWriter{budget: 0}, nil, NDJSON)
	vs := wireFixture(3)
	ok := true
	for i := range vs {
		ok = w.Send(&vs[i])
		if !ok {
			break
		}
	}
	if ok {
		t.Fatal("Send never reported the write failure")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close returned nil after write failure")
	}
}
