package stream

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	cind "cind"

	"cind/internal/detect"
	"cind/internal/wal"
)

// testSpec is a two-constraint fixture: duplicate keys in r violate phi,
// and every r tuple whose a-value is missing from s violates psi — so a
// small CSV yields a mixed CFD/CIND violation stream.
const testSpec = `
relation r(a, b, c)
relation s(a)

cfd phi: r(a -> b) {
  (_ || _)
}

cind psi: r[a; nil] <= s[a; nil] {
  (_ || _)
}
`

// testViolations runs the real engine over a generated instance and
// returns the violations in deterministic (parallelism-1) stream order.
func testViolations(t testing.TB, rows int) []detect.Violation {
	t.Helper()
	set, err := cind.ParseConstraints(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	db := cind.NewDatabase(set.Schema())
	var sb strings.Builder
	sb.WriteString("a,b,c\n")
	keys := rows/3 + 1
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "key-%d,val-%d,c%d\n", i%keys, i, i)
	}
	if err := cind.LoadCSV(db, "r", strings.NewReader(sb.String()), true); err != nil {
		t.Fatal(err)
	}
	chk, err := cind.NewChecker(db, set, cind.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	var out []detect.Violation
	for v, verr := range chk.Violations(context.Background()) {
		if verr != nil {
			t.Fatal(verr)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		t.Fatal("fixture produced no violations")
	}
	return out
}

// encodeStream drives a Writer over the violations and returns the raw
// stream bytes.
func encodeStream(t testing.TB, vs []detect.Violation, enc Encoding, endErr string, opts Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, nil, enc, opts)
	for _, v := range vs {
		if !w.Send(v) {
			t.Fatal("Send reported failure on a healthy buffer")
		}
	}
	var err error
	if endErr != "" {
		err = w.CloseError(endErr)
	} else {
		err = w.Close()
	}
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := w.Count(); got != int64(len(vs)) {
		t.Fatalf("Count = %d, want %d", got, len(vs))
	}
	return buf.Bytes()
}

func wantWire(vs []detect.Violation) []Violation {
	out := make([]Violation, len(vs))
	for i, v := range vs {
		out[i] = Convert(v)
	}
	return out
}

func assertSameViolations(t testing.TB, label string, got, want []Violation) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d violations, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, _ := json.Marshal(got[i])
		w, _ := json.Marshal(want[i])
		if !bytes.Equal(g, w) {
			t.Fatalf("%s: violation %d = %s, want %s", label, i, g, w)
		}
	}
}

var allEncodings = []Encoding{NDJSON, JSONArray, Binary}

// TestRoundTrip: for every encoding, a written stream decodes back to the
// identical violations, in order, with the trailer count intact — the
// core differential property the server suite then pins over HTTP.
func TestRoundTrip(t *testing.T) {
	vs := testViolations(t, 200)
	want := wantWire(vs)
	for _, enc := range allEncodings {
		t.Run(enc.String(), func(t *testing.T) {
			raw := encodeStream(t, vs, enc, "", Options{})
			got, err := DecodeAll(bytes.NewReader(raw), enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			assertSameViolations(t, enc.String(), got, want)

			d := NewDecoder(bytes.NewReader(raw), enc)
			n := 0
			for {
				_, err := d.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatalf("Next: %v", err)
				}
				n++
			}
			if d.Count() != int64(n) || n != len(want) {
				t.Fatalf("trailer count %d, decoded %d, want %d", d.Count(), n, len(want))
			}
		})
	}
}

// TestRoundTripEmpty: a violation-free stream still carries its terminal
// record in every encoding — an empty stream and a dead connection must
// never look alike.
func TestRoundTripEmpty(t *testing.T) {
	for _, enc := range allEncodings {
		t.Run(enc.String(), func(t *testing.T) {
			raw := encodeStream(t, nil, enc, "", Options{})
			if len(raw) == 0 {
				t.Fatal("empty stream wrote no terminal record")
			}
			got, err := DecodeAll(bytes.NewReader(raw), enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(got) != 0 {
				t.Fatalf("decoded %d violations from an empty stream", len(got))
			}
		})
	}
}

// TestErrorTerminal: a CloseError stream yields every violation sent, then
// *RemoteError with the message — in every encoding.
func TestErrorTerminal(t *testing.T) {
	vs := testViolations(t, 30)
	for _, enc := range allEncodings {
		t.Run(enc.String(), func(t *testing.T) {
			raw := encodeStream(t, vs, enc, "drain: context canceled", Options{})
			got, err := DecodeAll(bytes.NewReader(raw), enc)
			var re *RemoteError
			if !errors.As(err, &re) {
				t.Fatalf("decode error = %v, want *RemoteError", err)
			}
			if re.Msg != "drain: context canceled" {
				t.Fatalf("remote error %q", re.Msg)
			}
			assertSameViolations(t, enc.String(), got, wantWire(vs))
		})
	}
}

// TestTruncationDetected: every proper prefix of a valid stream must fail
// to decode cleanly — io.EOF may only come from the terminal record. The
// final bytes of the NDJSON/JSON forms are a cosmetic trailing newline, so
// those cuts stop one byte earlier.
func TestTruncationDetected(t *testing.T) {
	vs := testViolations(t, 12)
	for _, enc := range allEncodings {
		t.Run(enc.String(), func(t *testing.T) {
			raw := encodeStream(t, vs, enc, "", Options{})
			end := len(raw)
			if enc != Binary {
				end-- // without the trailing newline the stream is still complete
			}
			for cut := 0; cut < end; cut++ {
				_, err := DecodeAll(bytes.NewReader(raw[:cut]), enc)
				if err == nil {
					t.Fatalf("prefix of %d/%d bytes decoded as a complete stream", cut, len(raw))
				}
			}
			// Cutting nothing decodes cleanly.
			if _, err := DecodeAll(bytes.NewReader(raw), enc); err != nil {
				t.Fatalf("full stream: %v", err)
			}
		})
	}
}

// TestBinaryCorruption: flipping any byte of a binary stream must never
// yield a clean decode with different content — CRC framing turns
// corruption into an error.
func TestBinaryCorruption(t *testing.T) {
	vs := testViolations(t, 12)
	raw := encodeStream(t, vs, Binary, "", Options{})
	want, err := DecodeAll(bytes.NewReader(raw), Binary)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		mut := bytes.Clone(raw)
		mut[i] ^= 0x40
		got, err := DecodeAll(bytes.NewReader(mut), Binary)
		if err == nil {
			assertSameViolations(t, fmt.Sprintf("byte %d flipped yet decoded clean", i), got, want)
		}
	}
}

// TestWALFrameCompatibility: the binary stream is a valid WAL frame
// sequence — wal.Decode walks it intact, and a mid-frame cut shows up as
// a shortened validEnd, exactly the torn-tail discipline the WAL pins.
func TestWALFrameCompatibility(t *testing.T) {
	vs := testViolations(t, 50)
	raw := encodeStream(t, vs, Binary, "", Options{})
	records, validEnd := wal.Decode(raw)
	if validEnd != int64(len(raw)) {
		t.Fatalf("wal.Decode validEnd = %d, want %d", validEnd, len(raw))
	}
	if len(records) < 2 {
		t.Fatalf("stream of %d violations decoded to %d WAL records", len(vs), len(records))
	}
	for i, rec := range records {
		tag := rec.Payload[0]
		last := i == len(records)-1
		if last && tag != 'Z' {
			t.Fatalf("final frame tag %q, want Z", tag)
		}
		if !last && tag != 'V' {
			t.Fatalf("frame %d tag %q, want V", i, tag)
		}
	}
	if _, validEnd := wal.Decode(raw[:len(raw)-3]); validEnd >= int64(len(raw)-3) {
		t.Fatalf("torn tail not detected: validEnd %d of %d", validEnd, len(raw)-3)
	}
}

// TestNegotiate pins the Accept mapping, including the defaulting rules
// that keep pre-negotiation clients on NDJSON.
func TestNegotiate(t *testing.T) {
	cases := []struct {
		accept string
		want   Encoding
	}{
		{"", NDJSON},
		{"*/*", NDJSON},
		{"text/html", NDJSON},
		{"application/x-ndjson", NDJSON},
		{"application/json", JSONArray},
		{"application/x-cind-frames", Binary},
		{"Application/JSON", JSONArray},
		{" application/json ; q=0.9", JSONArray},
		{"text/html, application/x-cind-frames", Binary},
		{"application/json, application/x-cind-frames", JSONArray},
		{"application/x-cind-frames;q=0.2, application/json", Binary},
	}
	for _, c := range cases {
		if got := Negotiate(c.accept); got != c.want {
			t.Errorf("Negotiate(%q) = %v, want %v", c.accept, got, c.want)
		}
	}
}

// TestParseEncoding round-trips the flag spellings and rejects junk.
func TestParseEncoding(t *testing.T) {
	for _, enc := range allEncodings {
		got, err := ParseEncoding(enc.String())
		if err != nil || got != enc {
			t.Fatalf("ParseEncoding(%q) = %v, %v", enc.String(), got, err)
		}
	}
	if _, err := ParseEncoding("protobuf"); err == nil {
		t.Fatal("ParseEncoding accepted junk")
	}
}

// timedWriter records each Write's instant, for flush-policy assertions.
type timedWriter struct {
	mu     sync.Mutex
	writes []time.Time
	sizes  []int
}

func (w *timedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.writes = append(w.writes, time.Now())
	w.sizes = append(w.sizes, len(p))
	return len(p), nil
}

func (w *timedWriter) snapshot() []time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]time.Time(nil), w.writes...)
}

// TestFlushPolicy: the first violation is flushed eagerly (first-violation
// latency), later buffered bytes reach the writer within the flush
// interval even when the size threshold is never hit, and nothing is lost
// at Close.
func TestFlushPolicy(t *testing.T) {
	vs := testViolations(t, 10)
	out := &timedWriter{}
	w := NewWriter(out, nil, NDJSON, Options{
		FlushBytes:    1 << 30, // size flushing out of the picture
		FlushInterval: 25 * time.Millisecond,
		BatchSize:     1, // push every Send
		PushInterval:  time.Millisecond,
	})
	start := time.Now()
	w.Send(vs[0])
	deadline := time.Now().Add(2 * time.Second)
	for len(out.snapshot()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first violation never flushed")
		}
		time.Sleep(time.Millisecond)
	}
	if d := out.snapshot()[0].Sub(start); d > 500*time.Millisecond {
		t.Fatalf("first flush after %v, want eager", d)
	}

	// A second violation is below every size threshold; only the deadline
	// can flush it.
	w.Send(vs[1])
	for len(out.snapshot()) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("interval flush never fired")
		}
		time.Sleep(time.Millisecond)
	}

	for _, v := range vs[2:] {
		w.Send(v)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// failAfterWriter fails every Write after the first n bytes.
type failAfterWriter struct {
	n       int
	written int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written >= w.n {
		return 0, errors.New("broken pipe")
	}
	w.written += len(p)
	return len(p), nil
}

// TestWriterFailure: once the sink fails, Send reports it (within the
// micro-batch bound) and Close surfaces the write error.
func TestWriterFailure(t *testing.T) {
	vs := testViolations(t, 50)
	w := NewWriter(&failAfterWriter{n: 1}, nil, NDJSON, Options{
		BatchSize:    1,
		PushInterval: time.Millisecond,
	})
	sawFalse := false
	deadline := time.Now().Add(5 * time.Second)
	for !sawFalse && time.Now().Before(deadline) {
		for _, v := range vs {
			if !w.Send(v) {
				sawFalse = true
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	if !sawFalse {
		t.Fatal("Send never reported the dead sink")
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close returned nil after write failures")
	}
}

// TestDecodeAllRejectsGarbage: byte soup is an error in every encoding,
// never a clean empty stream.
func TestDecodeAllRejectsGarbage(t *testing.T) {
	for _, enc := range allEncodings {
		if _, err := DecodeAll(strings.NewReader("not a violation stream"), enc); err == nil {
			t.Fatalf("%v decoded garbage cleanly", enc)
		}
	}
}

// TestTrailerCountMismatch: a trailer whose count disagrees with the
// violations on the wire is corruption, not a clean end.
func TestTrailerCountMismatch(t *testing.T) {
	vs := testViolations(t, 5)
	raw := encodeStream(t, vs, NDJSON, "", Options{})
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	lines[len(lines)-1] = []byte(`{"done":true,"count":999}`)
	_, err := DecodeAll(bytes.NewReader(bytes.Join(lines, []byte("\n"))), NDJSON)
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("mismatched trailer count decoded cleanly: %v", err)
	}
}
