package stream

import (
	"encoding/binary"
	"fmt"

	"cind/internal/detect"
	"cind/internal/instance"
)

// Binary 'V' frame body: violations back to back, each
//
//	uvarint len + bytes   kind
//	uvarint len + bytes   constraint id
//	uvarint len + bytes   relation
//	zigzag varint         row
//	uvarint               witness tuple count
//	  per tuple: uvarint value count, then uvarint len + bytes per value
//
// The framing layer (internal/wal) already guarantees the body is intact
// (CRC) and bounded (MaxRecord), so the body codec only has to be exact:
// every length is validated against the remaining bytes, and trailing
// garbage is an error, never silently skipped.

// appendBinaryViolation appends one violation's binary form to dst,
// straight from the engine value — no intermediate wire struct. The
// witness tuples come from AsCFD/AsCIND rather than Witness(), which
// would allocate a fresh slice per violation; callers reuse dst as
// scratch, so the steady state is allocation-free.
func appendBinaryViolation(dst []byte, v detect.Violation) []byte {
	dst = appendStr(dst, v.Kind().String())
	dst = appendStr(dst, v.ConstraintID())
	dst = appendStr(dst, v.Relation())
	dst = binary.AppendVarint(dst, int64(v.Row()))
	if cv, ok := v.AsCFD(); ok {
		dst = binary.AppendUvarint(dst, 2)
		dst = appendTuple(dst, cv.T1)
		dst = appendTuple(dst, cv.T2)
	} else if iv, ok := v.AsCIND(); ok {
		dst = binary.AppendUvarint(dst, 1)
		dst = appendTuple(dst, iv.T)
	} else {
		dst = binary.AppendUvarint(dst, 0)
	}
	return dst
}

// appendBinaryWire is appendBinaryViolation for an already-decoded wire
// violation — the relay path: a router re-encoding frames it decoded from
// a shard emits bodies in exactly the format above, so the two producers
// are indistinguishable to the Decoder.
func appendBinaryWire(dst []byte, v *Violation) []byte {
	dst = appendStr(dst, v.Kind)
	dst = appendStr(dst, v.Constraint)
	dst = appendStr(dst, v.Relation)
	dst = binary.AppendVarint(dst, int64(v.Row))
	dst = binary.AppendUvarint(dst, uint64(len(v.Witness)))
	for _, t := range v.Witness {
		dst = binary.AppendUvarint(dst, uint64(len(t)))
		for _, val := range t {
			dst = appendStr(dst, val)
		}
	}
	return dst
}

func appendTuple(dst []byte, t instance.Tuple) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(t)))
	for _, val := range t {
		dst = appendStr(dst, val.String())
	}
	return dst
}

func appendStr(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// internCache is a direct-mapped string cache for the decoder. Violation
// streams repeat the same handful of kinds, constraint ids, relations and
// domain values millions of times; interning collapses each distinct value
// to one allocation. Direct mapping keeps the hit path to a short hash and
// one compare — far cheaper than a map — and bounds memory to the slot
// count: a high-cardinality stream just thrashes slots and allocates as if
// there were no cache.
const internSlots = 1 << 12

type internCache struct{ slots [internSlots]string }

// get returns a shared string for b's value. Neither the FNV-1a hash nor
// the string(b) comparison allocates; only a slot miss does. The function
// is kept small enough to inline into the decode loop.
func (c *internCache) get(b []byte) string {
	h := uint32(2166136261)
	for _, x := range b {
		h = (h ^ uint32(x)) * 16777619
	}
	if s := c.slots[h&(internSlots-1)]; s == string(b) {
		return s
	}
	s := string(b)
	c.slots[h&(internSlots-1)] = s
	return s
}

// batchReader decodes a 'V' frame body with bounds checking on every read.
// kind/constraint/relation are nearly always runs of the same value, so
// each has a single-entry cache checked with one compare, no hash; witness
// values go through the hashed intern cache. Witness slices are carved out
// of per-reader slabs — two allocations per frame in the steady state, not
// two per violation. Sub-slices handed out before a slab grows keep the
// old backing array, which stays valid; only the slab's tail is ever
// appended to.
type batchReader struct {
	body   []byte
	off    int
	intern *internCache

	lastKind, lastConstraint, lastRelation string

	vals []string
	tups [][]string
}

// cachedStr reads a length-prefixed string, reusing *last when the bytes
// match it.
func (r *batchReader) cachedStr(last *string) (string, error) {
	u, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if u > uint64(len(r.body)-r.off) {
		return "", fmt.Errorf("stream: string of %d bytes overruns frame at offset %d", u, r.off)
	}
	b := r.body[r.off : r.off+int(u)]
	r.off += int(u)
	if *last != string(b) {
		*last = r.intern.get(b)
	}
	return *last, nil
}

func (r *batchReader) uvarint() (uint64, error) {
	// Single-byte values — almost every length, count and arity — skip
	// the generic decoder.
	if r.off < len(r.body) {
		if b := r.body[r.off]; b < 0x80 {
			r.off++
			return uint64(b), nil
		}
	}
	u, n := binary.Uvarint(r.body[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("stream: bad uvarint at frame offset %d", r.off)
	}
	r.off += n
	return u, nil
}

func (r *batchReader) varint() (int64, error) {
	v, n := binary.Varint(r.body[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("stream: bad varint at frame offset %d", r.off)
	}
	r.off += n
	return v, nil
}

func (r *batchReader) str() (string, error) {
	u, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if u > uint64(len(r.body)-r.off) {
		return "", fmt.Errorf("stream: string of %d bytes overruns frame at offset %d", u, r.off)
	}
	s := r.intern.get(r.body[r.off : r.off+int(u)])
	r.off += int(u)
	return s, nil
}

// slabSize is the capacity of a fresh witness slab: big enough to
// amortize allocation across hundreds of violations, small enough that a
// retired slab pins little memory once its violations are dropped.
const slabSize = 4096

// reserveVals guarantees room for n contiguous values at the slab tail,
// starting a fresh slab when the current one is full. Retired slabs stay
// with whatever violations reference them.
func (r *batchReader) reserveVals(n int) {
	if cap(r.vals)-len(r.vals) < n {
		r.vals = make([]string, 0, max(slabSize, n))
	}
}

func (r *batchReader) reserveTups(n int) {
	if cap(r.tups)-len(r.tups) < n {
		r.tups = make([][]string, 0, max(slabSize, n))
	}
}

// decode parses a 'V' frame body, appending its violations to out. The
// body must be consumed exactly: a partial trailing violation is
// corruption (the CRC passed, so the producer never wrote it), not
// truncation. On error the appended prefix is returned with the error so
// the caller can discard it wholesale.
func (r *batchReader) decode(body []byte, out []Violation) ([]Violation, error) {
	r.body, r.off = body, 0
	if r.intern == nil {
		r.intern = new(internCache)
	}
	for r.off < len(body) {
		// Build in place: append the zero value first, fill through the
		// pointer, and drop it again on error — no by-value struct copy
		// per violation.
		out = append(out, Violation{})
		v := &out[len(out)-1]
		var err error
		if v.Kind, err = r.cachedStr(&r.lastKind); err != nil {
			return out[:len(out)-1], err
		}
		if v.Constraint, err = r.cachedStr(&r.lastConstraint); err != nil {
			return out[:len(out)-1], err
		}
		if v.Relation, err = r.cachedStr(&r.lastRelation); err != nil {
			return out[:len(out)-1], err
		}
		row, err := r.varint()
		if err != nil {
			return out[:len(out)-1], err
		}
		v.Row = int(row)
		nt, err := r.uvarint()
		if err != nil {
			return out[:len(out)-1], err
		}
		if nt > uint64(len(body)-r.off) {
			return out[:len(out)-1], fmt.Errorf("stream: witness count %d overruns frame at offset %d", nt, r.off)
		}
		r.reserveTups(int(nt))
		tupStart := len(r.tups)
		for i := uint64(0); i < nt; i++ {
			nv, err := r.uvarint()
			if err != nil {
				return out[:len(out)-1], err
			}
			if nv > uint64(len(body)-r.off) {
				return out[:len(out)-1], fmt.Errorf("stream: tuple arity %d overruns frame at offset %d", nv, r.off)
			}
			r.reserveVals(int(nv))
			valStart := len(r.vals)
			for j := uint64(0); j < nv; j++ {
				s, err := r.str()
				if err != nil {
					return out[:len(out)-1], err
				}
				r.vals = append(r.vals, s)
			}
			r.tups = append(r.tups, r.vals[valStart:len(r.vals):len(r.vals)])
		}
		v.Witness = r.tups[tupStart:len(r.tups):len(r.tups)]
	}
	return out, nil
}
