package exp

import (
	"fmt"
	"math/rand"
	"time"

	"cind/internal/bank"
	"cind/internal/consistency"
	cind "cind/internal/core"
	"cind/internal/gen"
	"cind/internal/implication"
	"cind/internal/inference"
	"cind/internal/pattern"
)

// Check is one executable verification row for Tables 1 and 2. The tables
// summarise complexity results; the laptop-checkable content of each claim
// is verified by construction, and the asymptotic lower bounds are
// represented by their witnessing phenomena (e.g. the finite-domain case
// split that drives the EXPTIME bound).
type Check struct {
	Table  string
	Claim  string
	Method string
	Pass   bool
	Detail string
}

// RunTables executes every Table 1 / Table 2 verification row.
func RunTables(p Params) []Check {
	var out []Check
	out = append(out, checkTable1CINDConsistency(p))
	out = append(out, checkTable1CINDAxioms())
	out = append(out, checkTable1CINDImplicationFinite())
	out = append(out, checkTable1CFDConsistency())
	out = append(out, checkTable1CombinedUndecidable())
	out = append(out, checkTable2NoFiniteCIND16())
	out = append(out, checkTable2CFDQuadratic(p))
	return out
}

// TableSeries renders the checks.
func TableSeries(checks []Check) *Series {
	s := &Series{
		Title:   "Tables 1 & 2: executable verification of the complexity-table claims",
		Columns: []string{"table", "claim", "method", "result", "detail"},
	}
	for _, c := range checks {
		res := "PASS"
		if !c.Pass {
			res = "FAIL"
		}
		s.Rows = append(s.Rows, []string{c.Table, c.Claim, c.Method, res, c.Detail})
	}
	return s
}

// checkTable1CINDConsistency: "CINDs: consistency O(1)" — every CIND set is
// consistent; the Theorem 3.2 witness construction succeeds and satisfies Σ
// across random workloads.
func checkTable1CINDConsistency(p Params) Check {
	c := Check{Table: "1+2", Claim: "CIND consistency O(1) (always consistent)",
		Method: "Theorem 3.2 witness on random CIND sets"}
	trials, okCount := 10, 0
	for seed := int64(1); seed <= int64(trials); seed++ {
		w := gen.New(gen.Config{Relations: 4, MaxAttrs: 4, F: 0.2, Card: 25,
			CFDRatio: 0.01, Seed: seed})
		db, err := cind.Witness(w.Schema, w.CINDs, 0)
		if err == nil && !db.IsEmpty() && cind.SatisfiedAll(w.CINDs, db) {
			okCount++
		}
	}
	c.Pass = okCount == trials
	c.Detail = fmt.Sprintf("%d/%d witnesses built and verified", okCount, trials)
	return c
}

// checkTable1CINDAxioms: "CINDs: finitely axiomatizable" — the inference
// system I derives the paper's Example 3.4 goal with a replayable proof.
func checkTable1CINDAxioms() Check {
	c := Check{Table: "1", Claim: "CIND implication finitely axiomatizable",
		Method: "Example 3.4 derivation in system I"}
	sch := bank.Schema()
	sigma := []*cind.CIND{
		bank.Psi1(sch, "EDI"), bank.Psi2(sch, "EDI"), bank.Psi5(sch), bank.Psi6(sch),
	}
	goal := cind.MustNew(sch, "ex33", "account_EDI", []string{"at"}, nil,
		"interest", []string{"at"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	proof, ok := inference.Derive(sch, sigma, goal, inference.Options{})
	c.Pass = ok && proof != nil && len(proof.Steps) > 0
	if c.Pass {
		c.Detail = fmt.Sprintf("proof with %d steps (CIND2/3/6/8)", len(proof.Steps))
	} else {
		c.Detail = "derivation not found"
	}
	return c
}

// checkTable1CINDImplicationFinite: "CIND implication EXPTIME-complete" —
// the finite-domain case split is the executable phenomenon: implication
// that holds only because dom(at) is covered, and fails when one case is
// removed.
func checkTable1CINDImplicationFinite() Check {
	c := Check{Table: "1", Claim: "CIND implication needs finite-domain case analysis (EXPTIME driver)",
		Method: "covered vs uncovered dom(at) decision"}
	sch := bank.Schema()
	mk := func(id, v string) *cind.CIND {
		return cind.MustNew(sch, id, "account_EDI", nil, []string{"at"},
			"interest", nil, []string{"at"},
			[]cind.Row{{LHS: pattern.Tup(pattern.Sym(v)), RHS: pattern.Tup(pattern.Sym(v))}})
	}
	goal := cind.MustNew(sch, "g", "account_EDI", []string{"at"}, nil,
		"interest", []string{"at"}, nil,
		[]cind.Row{{LHS: pattern.Wilds(1), RHS: pattern.Wilds(1)}})
	full := implication.Decide(sch, []*cind.CIND{mk("s", "saving"), mk("c", "checking")}, goal, implication.Options{})
	half := implication.Decide(sch, []*cind.CIND{mk("s", "saving")}, goal, implication.Options{})
	c.Pass = full.Verdict == implication.Implied && half.Verdict == implication.NotImplied
	c.Detail = fmt.Sprintf("covered: %v, uncovered: %v", full.Verdict, half.Verdict)
	return c
}

// checkTable1CFDConsistency: "CFDs: consistency NP-complete" — executable
// side: Example 3.2 is inconsistent under a finite domain, consistent under
// an infinite one, and the chase/SAT deciders agree.
func checkTable1CFDConsistency() Check {
	c := Check{Table: "1", Claim: "CFD consistency NP-complete (finite domains create conflicts)",
		Method: "Example 3.2 under bool vs infinite dom(A)"}
	finite := exampleThreeTwo(true)
	infinite := exampleThreeTwo(false)
	c.Pass = !finite && infinite
	c.Detail = fmt.Sprintf("bool dom consistent=%v, infinite dom consistent=%v", finite, infinite)
	return c
}

func exampleThreeTwo(finiteA bool) bool {
	sch, cfds := bank.Example32(finiteA)
	rel := sch.MustRelationByName("R")
	_, okChase := consistency.CFDCheckingChase(rel, cfds, 1000, rand.New(rand.NewSource(1)))
	_, okSAT := consistency.CFDCheckingSAT(rel, cfds)
	if okChase != okSAT {
		return !okChase // disagreement would itself be a failure; surface it
	}
	return okChase
}

// checkTable1CombinedUndecidable: "CFDs+CINDs: consistency undecidable" —
// executable side: the heuristic algorithms handle Example 4.2 correctly
// (reject) while verifying consistent bank constraints (accept), i.e. they
// are sound and useful despite undecidability.
func checkTable1CombinedUndecidable() Check {
	c := Check{Table: "1+2", Claim: "CFD+CIND consistency undecidable -> heuristics (Sec 5)",
		Method: "Example 4.2 rejected, bank Σ accepted"}
	sch42, phi, psi := bank.Example42()
	bad := consistency.CheckingBool(sch42, phi, psi, consistency.Options{})
	sch := bank.Schema()
	good := consistency.CheckingBool(sch, bank.CFDs(sch), bank.CINDs(sch),
		consistency.Options{K: 40, Seed: 5})
	c.Pass = !bad && good
	c.Detail = fmt.Sprintf("Example 4.2 consistent=%v, bank consistent=%v", bad, good)
	return c
}

// checkTable2NoFiniteCIND16: "no finite domains: CIND1–CIND6 complete,
// PSPACE" — Example 3.4 must FAIL to derive once dom(at) is infinite
// (CIND7/8 have no purchase), while the chase refutes it with a
// counterexample, matching Theorem 3.5's boundary.
func checkTable2NoFiniteCIND16() Check {
	c := Check{Table: "2", Claim: "Without finite domains CIND8 is unusable; implication drops to CIND1-6",
		Method: "Example 3.4 over infinite dom(at)"}
	sch, sigma, goal := bank.Example34Infinite()
	out := implication.Decide(sch, sigma, goal, implication.Options{})
	c.Pass = out.Verdict == implication.NotImplied
	c.Detail = fmt.Sprintf("verdict=%v (finite-domain version is implied)", out.Verdict)
	return c
}

// checkTable2CFDQuadratic: "no finite domains: CFD consistency O(n²)" —
// time chase CFD_Checking on F = 0 workloads at n and 4n constraints and
// require the growth to stay polynomial (well under the n³ that a
// super-quadratic implementation would show).
func checkTable2CFDQuadratic(p Params) Check {
	c := Check{Table: "2", Claim: "CFD consistency O(n^2) without finite domains",
		Method: "runtime growth n -> 4n"}
	// Take the minimum over several repetitions: wall-clock minima are
	// robust against scheduler noise, which matters when the test suite
	// runs packages in parallel.
	run := func(card int) time.Duration {
		w := gen.New(gen.Config{Relations: 1, MaxAttrs: 10, F: 0, Card: card,
			CFDRatio: 1.0, Consistent: true, Seed: p.Seed})
		rel := w.Schema.Relations()[0]
		best := time.Duration(1<<62 - 1)
		for rep := 0; rep < 7; rep++ {
			d := timeIt(func() {
				consistency.CFDCheckingChase(rel, w.CFDs, p.KCFD, rand.New(rand.NewSource(1)))
			})
			if d < best {
				best = d
			}
		}
		return best
	}
	small := run(250)
	big := run(1000)
	ratio := float64(big) / float64(max64(1, int64(small)))
	// 4x the input: quadratic predicts ≤16x; allow slack but reject
	// explosive growth.
	c.Pass = ratio < 64
	c.Detail = fmt.Sprintf("t(250)=%v t(1000)=%v ratio=%.1fx (quadratic bound ≤16x + noise)", small, big, ratio)
	return c
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
