// Package exp is the experiment harness reproducing Section 6 of the
// paper. Every figure of the evaluation (10a, 10b, 11a, 11b, 11c, 11d) has
// a function that sweeps the paper's parameter, runs the paper's algorithms
// on generated workloads, and returns the series the paper plots; Tables 1
// and 2 have executable verification rows for their laptop-checkable
// claims. cmd/cindexp exposes the harness on the command line and
// bench_test.go pins one benchmark per figure.
//
// Absolute times will differ from the paper's 2005-era Pentium D; the
// claims under reproduction are the shapes: Chase ≪ SAT and roughly linear
// scaling (Fig 10a), accuracy rising with K_CFD (Fig 10b), Checking
// accuracy ≈ 100% on consistent sets (Fig 11a), near-linear runtime in
// card(Σ) with Checking ≤ RandomChecking (Fig 11b/c), and growth with the
// number of relations at fixed card(Σ)/relations (Fig 11d).
package exp

import (
	"fmt"
	"io"
	"time"

	"cind/internal/consistency"
	"cind/internal/gen"
)

// Params bundles the experiment-wide knobs, defaulting to the paper's
// Section 6 values scaled to finish quickly; cmd/cindexp can restore the
// full paper scale.
type Params struct {
	Relations int     // schema size (paper: 20)
	MaxAttrs  int     // attributes per relation (paper: 15)
	F         float64 // finite-domain attribute ratio (paper: 0–25%)
	Runs      int     // repetitions averaged per point (paper: 6)
	Seed      int64
	K         int // RandomChecking attempts (paper: 20)
	T         int // table cap (paper: 2000–4000)
	KCFD      int // chase CFD_Checking valuation cap (paper: 2000K)
}

// Defaults returns quick-run parameters true to the paper's shape.
func Defaults() Params {
	return Params{
		Relations: 20,
		MaxAttrs:  15,
		F:         0.25,
		Runs:      3,
		Seed:      1,
		K:         20,
		T:         2000,
		KCFD:      100000,
	}
}

func (p Params) opts(seed int64) consistency.Options {
	return consistency.Options{
		N: 2, K: p.K, T: p.T, KCFD: p.KCFD, Seed: seed,
	}
}

// workload generates one experiment workload.
func (p Params) workload(card int, consistent bool, cfdOnly bool, seed int64) *gen.Workload {
	cfg := gen.Config{
		Relations:  p.Relations,
		MaxAttrs:   p.MaxAttrs,
		F:          p.F,
		Card:       card,
		Consistent: consistent,
		Seed:       seed,
	}
	if cfdOnly {
		cfg.CFDRatio = 1.0
	}
	return gen.New(cfg)
}

// timeIt returns the wall-clock duration of f.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// avg averages durations.
func avg(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// Series is one printable experiment result: a header and rows of columns.
type Series struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Print renders the series as aligned columns (and is trivially grep/CSV
// convertible).
func (s *Series) Print(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", s.Title)
	widths := make([]int, len(s.Columns))
	for i, c := range s.Columns {
		widths[i] = len(c)
	}
	for _, row := range s.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for i, c := range s.Columns {
		fmt.Fprintf(w, "%-*s  ", widths[i], c)
	}
	fmt.Fprintln(w)
	for _, row := range s.Rows {
		for i, cell := range row {
			fmt.Fprintf(w, "%-*s  ", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

func pct(hit, total int) string {
	if total == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(hit)/float64(total))
}
