package exp

import (
	"fmt"
	"time"

	"cind/internal/consistency"
)

func fmtInt(n int) string { return fmt.Sprintf("%d", n) }

func pctf(f float64) string { return fmt.Sprintf("%.0f%%", 100*f) }

// Fig11Point is one x-position of Figures 11(a)–(c): the constraint count
// against accuracy and runtime of RandomChecking and Checking.
type Fig11Point struct {
	Card          int
	RandomHits    int // consistent verdicts from RandomChecking
	CheckingHits  int // consistent verdicts from Checking
	Runs          int
	RandomTime    time.Duration
	CheckingTime  time.Duration
}

// Fig11Consistent sweeps card(Σ) on consistent CFD+CIND workloads
// (75%/25% mix) — accuracy is Figure 11(a), runtime Figure 11(b). Ground
// truth is known: every workload is consistent by construction (the
// generator's witness), so "hit" means the algorithm answered true.
func Fig11Consistent(p Params, cards []int) []Fig11Point {
	return fig11(p, cards, true)
}

// Fig11Random sweeps card(Σ) on unconstrained random workloads —
// Figure 11(c) (runtime only; ground truth is unknown, so the hit counts
// merely report how often each algorithm found a witness).
func Fig11Random(p Params, cards []int) []Fig11Point {
	return fig11(p, cards, false)
}

func fig11(p Params, cards []int, consistent bool) []Fig11Point {
	var out []Fig11Point
	for _, card := range cards {
		pt := Fig11Point{Card: card, Runs: p.Runs}
		var rTimes, cTimes []time.Duration
		for run := 0; run < p.Runs; run++ {
			seed := p.Seed + int64(run)*977
			w := p.workload(card, consistent, false, seed)
			var rOK, cOK bool
			rTimes = append(rTimes, timeIt(func() {
				rOK = consistency.RandomCheckingBool(w.Schema, w.CFDs, w.CINDs, p.opts(seed))
			}))
			cTimes = append(cTimes, timeIt(func() {
				cOK = consistency.CheckingBool(w.Schema, w.CFDs, w.CINDs, p.opts(seed))
			}))
			if rOK {
				pt.RandomHits++
			}
			if cOK {
				pt.CheckingHits++
			}
		}
		pt.RandomTime = avg(rTimes)
		pt.CheckingTime = avg(cTimes)
		out = append(out, pt)
	}
	return out
}

// Fig11aSeries renders accuracy on consistent sets (Figure 11(a)).
func Fig11aSeries(points []Fig11Point) *Series {
	s := &Series{
		Title:   "Fig 11(a): accuracy on consistent CFD+CIND sets",
		Columns: []string{"card", "RandomChecking_acc", "Checking_acc"},
	}
	for _, p := range points {
		s.Rows = append(s.Rows, []string{
			fmtInt(p.Card), pct(p.RandomHits, p.Runs), pct(p.CheckingHits, p.Runs),
		})
	}
	return s
}

// Fig11bSeries renders runtime on consistent sets (Figure 11(b)).
func Fig11bSeries(points []Fig11Point) *Series {
	s := &Series{
		Title:   "Fig 11(b): runtime on consistent CFD+CIND sets",
		Columns: []string{"card", "RandomChecking_ms", "Checking_ms"},
	}
	for _, p := range points {
		s.Rows = append(s.Rows, []string{
			fmtInt(p.Card), ms(p.RandomTime), ms(p.CheckingTime),
		})
	}
	return s
}

// Fig11cSeries renders runtime on random sets (Figure 11(c)).
func Fig11cSeries(points []Fig11Point) *Series {
	s := &Series{
		Title:   "Fig 11(c): runtime on random CFD+CIND sets",
		Columns: []string{"card", "RandomChecking_ms", "Checking_ms"},
	}
	for _, p := range points {
		s.Rows = append(s.Rows, []string{
			fmtInt(p.Card), ms(p.RandomTime), ms(p.CheckingTime),
		})
	}
	return s
}

// Fig11dPoint is one x-position of Figure 11(d): the relation count at a
// fixed card(Σ)/relations ratio.
type Fig11dPoint struct {
	Relations    int
	Card         int
	RandomTime   time.Duration
	CheckingTime time.Duration
}

// Fig11d sweeps the number of relations at a fixed ratio of constraints per
// relation (the paper fixes card(Σ)/|R| = 1000 up to 100 relations; ratio
// is a parameter here so the quick benches can scale down).
func Fig11d(p Params, relations []int, ratio int) []Fig11dPoint {
	var out []Fig11dPoint
	for _, rels := range relations {
		pt := Fig11dPoint{Relations: rels, Card: rels * ratio}
		pp := p
		pp.Relations = rels
		var rTimes, cTimes []time.Duration
		for run := 0; run < p.Runs; run++ {
			seed := p.Seed + int64(run)*977
			w := pp.workload(pt.Card, true, false, seed)
			rTimes = append(rTimes, timeIt(func() {
				consistency.RandomCheckingBool(w.Schema, w.CFDs, w.CINDs, pp.opts(seed))
			}))
			cTimes = append(cTimes, timeIt(func() {
				consistency.CheckingBool(w.Schema, w.CFDs, w.CINDs, pp.opts(seed))
			}))
		}
		pt.RandomTime = avg(rTimes)
		pt.CheckingTime = avg(cTimes)
		out = append(out, pt)
	}
	return out
}

// Fig11dSeries renders the relation sweep (Figure 11(d)).
func Fig11dSeries(points []Fig11dPoint) *Series {
	s := &Series{
		Title:   "Fig 11(d): runtime vs number of relations (fixed card/relations ratio)",
		Columns: []string{"relations", "card", "RandomChecking_ms", "Checking_ms"},
	}
	for _, p := range points {
		s.Rows = append(s.Rows, []string{
			fmtInt(p.Relations), fmtInt(p.Card), ms(p.RandomTime), ms(p.CheckingTime),
		})
	}
	return s
}
