package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tiny returns parameters small enough for unit tests.
func tiny() Params {
	p := Defaults()
	p.Relations = 5
	p.MaxAttrs = 6
	p.Runs = 2
	p.KCFD = 2000
	p.T = 500
	return p
}

func TestFig10aShape(t *testing.T) {
	p := tiny()
	points := Fig10a(p, []int{5, 20})
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, pt := range points {
		if pt.Chase <= 0 || pt.SAT <= 0 {
			t.Fatalf("timings must be positive: %+v", pt)
		}
		// The paper's accuracy claim: the two methods agree (here: always,
		// since the workloads are small and consistent).
		if pt.Agree != pt.Runs {
			t.Fatalf("methods disagreed at %d cfds/rel", pt.CFDsPerRelation)
		}
	}
	s := Fig10aSeries(points)
	var buf bytes.Buffer
	s.Print(&buf)
	if !strings.Contains(buf.String(), "Fig 10(a)") {
		t.Fatal("series title missing")
	}
}

func TestFig10bAccuracyMonotoneTrend(t *testing.T) {
	p := tiny()
	points := Fig10b(p, []int{1, 2000})
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	lo, hi := points[0], points[1]
	if hi.Accuracy < lo.Accuracy {
		t.Fatalf("accuracy must not fall as K_CFD grows: %.2f -> %.2f",
			lo.Accuracy, hi.Accuracy)
	}
	if hi.Accuracy < 0.95 {
		t.Fatalf("large K_CFD accuracy = %.2f, want ≈ 1", hi.Accuracy)
	}
	if lo.Checked == 0 {
		t.Fatal("no relations checked")
	}
}

func TestFig11ConsistentAccuracyAndRuntime(t *testing.T) {
	p := tiny()
	points := Fig11Consistent(p, []int{30, 90})
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, pt := range points {
		// Figure 11(a): Checking accuracy ≈ 100% on consistent sets.
		if pt.CheckingHits != pt.Runs {
			t.Fatalf("Checking missed a consistent workload at card %d (%d/%d)",
				pt.Card, pt.CheckingHits, pt.Runs)
		}
		if pt.CheckingTime <= 0 || pt.RandomTime <= 0 {
			t.Fatalf("timings must be positive: %+v", pt)
		}
	}
	for _, mk := range []func([]Fig11Point) *Series{Fig11aSeries, Fig11bSeries, Fig11cSeries} {
		var buf bytes.Buffer
		mk(points).Print(&buf)
		if buf.Len() == 0 {
			t.Fatal("empty series output")
		}
	}
}

func TestFig11RandomRuns(t *testing.T) {
	p := tiny()
	points := Fig11Random(p, []int{40})
	if len(points) != 1 || points[0].CheckingTime <= 0 {
		t.Fatalf("points = %+v", points)
	}
}

func TestFig11dGrowsWithRelations(t *testing.T) {
	p := tiny()
	points := Fig11d(p, []int{3, 9}, 15)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[0].Card != 45 || points[1].Card != 135 {
		t.Fatalf("cards = %d, %d", points[0].Card, points[1].Card)
	}
	var buf bytes.Buffer
	Fig11dSeries(points).Print(&buf)
	if !strings.Contains(buf.String(), "relations") {
		t.Fatal("series columns missing")
	}
}

// TestRunTablesAllPass is the Tables 1–2 verification: every executable
// claim row must pass.
func TestRunTablesAllPass(t *testing.T) {
	if testing.Short() {
		t.Skip("table checks run the full pipeline")
	}
	checks := RunTables(tiny())
	if len(checks) != 7 {
		t.Fatalf("checks = %d, want 7", len(checks))
	}
	for _, c := range checks {
		if !c.Pass {
			t.Errorf("Table %s claim %q FAILED: %s", c.Table, c.Claim, c.Detail)
		}
	}
	var buf bytes.Buffer
	TableSeries(checks).Print(&buf)
	if !strings.Contains(buf.String(), "PASS") {
		t.Fatal("table rendering missing PASS")
	}
}

func TestSeriesPrintAlignment(t *testing.T) {
	s := &Series{
		Title:   "demo",
		Columns: []string{"a", "long_column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	var buf bytes.Buffer
	s.Print(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "# demo") {
		t.Fatal("title line missing")
	}
}

func TestHelpers(t *testing.T) {
	if ms(1500*time.Microsecond) != "1.50" {
		t.Fatalf("ms = %s", ms(1500*time.Microsecond))
	}
	if pct(1, 2) != "50%" || pct(0, 0) != "n/a" {
		t.Fatal("pct wrong")
	}
	if pctf(0.5) != "50%" {
		t.Fatal("pctf wrong")
	}
	if avg(nil) != 0 {
		t.Fatal("avg of nothing is 0")
	}
}
