package exp

import (
	"math/rand"
	"time"

	"cind/internal/consistency"
	"cind/internal/gen"
)

// Fig10aPoint is one x-position of Figure 10(a): the per-relation CFD count
// against the runtime of the chase-based and SAT-based CFD_Checking over
// the whole schema.
type Fig10aPoint struct {
	CFDsPerRelation int
	Chase           time.Duration
	SAT             time.Duration
	// Agree counts runs where both methods returned the same verdict —
	// the paper reports the two methods' accuracy as comparable.
	Agree int
	Runs  int
}

// Fig10a sweeps the number of CFDs per relation (paper: 0→1200 over 20
// relations, F = 25%, consistent CFD sets) and times both CFD_Checking
// implementations on every relation of the schema.
func Fig10a(p Params, perRelation []int) []Fig10aPoint {
	var out []Fig10aPoint
	for _, per := range perRelation {
		pt := Fig10aPoint{CFDsPerRelation: per, Runs: p.Runs}
		var chaseTimes, satTimes []time.Duration
		for run := 0; run < p.Runs; run++ {
			seed := p.Seed + int64(run)*977
			w := p.workload(per*p.Relations, true, true, seed)
			perRel := map[string][]int{}
			for i, c := range w.CFDs {
				perRel[c.Rel] = append(perRel[c.Rel], i)
			}
			agree := true
			chaseTimes = append(chaseTimes, timeIt(func() {
				for _, rel := range w.Schema.Relations() {
					cfds := pick(w.CFDs, perRel[rel.Name()])
					_, okC := consistency.CFDCheckingChase(rel, cfds, p.KCFD,
						rand.New(rand.NewSource(seed)))
					_ = okC
				}
			}))
			satTimes = append(satTimes, timeIt(func() {
				for _, rel := range w.Schema.Relations() {
					cfds := pick(w.CFDs, perRel[rel.Name()])
					_, okS := consistency.CFDCheckingSAT(rel, cfds)
					_ = okS
				}
			}))
			// Verdict agreement pass (untimed).
			for _, rel := range w.Schema.Relations() {
				cfds := pick(w.CFDs, perRel[rel.Name()])
				_, okC := consistency.CFDCheckingChase(rel, cfds, p.KCFD,
					rand.New(rand.NewSource(seed)))
				_, okS := consistency.CFDCheckingSAT(rel, cfds)
				if okC != okS {
					agree = false
				}
			}
			if agree {
				pt.Agree++
			}
		}
		pt.Chase = avg(chaseTimes)
		pt.SAT = avg(satTimes)
		out = append(out, pt)
	}
	return out
}

// Fig10aSeries renders the points like the paper's plot data.
func Fig10aSeries(points []Fig10aPoint) *Series {
	s := &Series{
		Title:   "Fig 10(a): CFD_Checking runtime, Chase vs SAT (consistent CFD sets)",
		Columns: []string{"cfds_per_relation", "chase_ms", "sat_ms", "verdicts_agree"},
	}
	for _, p := range points {
		s.Rows = append(s.Rows, []string{
			itoa(p.CFDsPerRelation), ms(p.Chase), ms(p.SAT), pct(p.Agree, p.Runs),
		})
	}
	return s
}

// Fig10bPoint is one x-position of Figure 10(b): the chase CFD_Checking
// accuracy for a given K_CFD budget on random CFD sets, measured against
// the complete SAT oracle.
type Fig10bPoint struct {
	KCFD     int
	Accuracy float64 // fraction of verdicts equal to the SAT oracle's
	Checked  int
}

// Fig10b fixes 1000 random CFDs (paper) and sweeps K_CFD. Random sets may
// be consistent or not; the SAT method is complete for single-relation CFD
// consistency, so it serves as ground truth.
//
// The workload is deliberately valuation-hard: a high ratio of
// finite-domain attributes with tiny domains, so that deciding a relation
// requires searching valuations rather than propagation alone — the regime
// the paper's K_CFD trade-off lives in (with large or absent finite
// domains, propagation decides outright and every K_CFD scores alike).
func Fig10b(p Params, kcfds []int) []Fig10bPoint {
	var out []Fig10bPoint
	const card = 1000
	for _, kcfd := range kcfds {
		pt := Fig10bPoint{KCFD: kcfd}
		hits := 0
		for run := 0; run < p.Runs; run++ {
			seed := p.Seed + int64(run)*977
			w := gen.New(gen.Config{
				Relations: p.Relations, MaxAttrs: p.MaxAttrs,
				F: 0.6, FinDomMin: 2, FinDomMax: 4,
				Card: card, CFDRatio: 1.0, Seed: seed,
			})
			perRel := map[string][]int{}
			for i, c := range w.CFDs {
				perRel[c.Rel] = append(perRel[c.Rel], i)
			}
			for _, rel := range w.Schema.Relations() {
				cfds := pick(w.CFDs, perRel[rel.Name()])
				if len(cfds) == 0 {
					continue
				}
				_, want := consistency.CFDCheckingSAT(rel, cfds)
				_, got := consistency.CFDCheckingChase(rel, cfds, kcfd,
					rand.New(rand.NewSource(seed)))
				pt.Checked++
				if got == want {
					hits++
				}
			}
		}
		if pt.Checked > 0 {
			pt.Accuracy = float64(hits) / float64(pt.Checked)
		}
		out = append(out, pt)
	}
	return out
}

// Fig10bSeries renders the accuracy curve.
func Fig10bSeries(points []Fig10bPoint) *Series {
	s := &Series{
		Title:   "Fig 10(b): chase CFD_Checking accuracy vs K_CFD (1000 random CFDs)",
		Columns: []string{"kcfd", "accuracy", "relations_checked"},
	}
	for _, p := range points {
		s.Rows = append(s.Rows, []string{
			itoa(p.KCFD), pctf(p.Accuracy), itoa(p.Checked),
		})
	}
	return s
}

func pick[T any](all []T, idx []int) []T {
	out := make([]T, len(idx))
	for i, j := range idx {
		out[i] = all[j]
	}
	return out
}

func itoa(n int) string { return fmtInt(n) }
