// Command cindlint runs the repository's static-analysis suite
// (internal/lint) over module packages: project-specific passes that
// enforce deterministic report order (maporder), cooperative
// cancellation in engine loops (ctxpoll), checked writes on stream exit
// paths (wercheck), injected clocks and seeded rngs in deterministic
// engines (nowalltime), and re-entrant mutex discipline (lockdisc).
// See LINT.md for the invariant catalogue and suppression policy.
//
// Usage:
//
//	cindlint [-json] [-only analyzer[,analyzer]] [packages...]
//
// Packages default to ./... and accept go-style patterns relative to
// the module root. Exit status: 0 clean; 1 diagnostics or reason-less
// ignore directives found; 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"cind/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cindlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the report as JSON (the lint.Report shape)")
	only := fs.String("only", "", "comma-separated analyzer subset (default: the full suite)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	analyzers := lint.Suite()
	if *only != "" {
		var err error
		if analyzers, err = lint.ByName(*only); err != nil {
			fmt.Fprintln(stderr, "cindlint:", err)
			return 2
		}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "cindlint:", err)
		return 2
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintln(stderr, "cindlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "cindlint:", err)
		return 2
	}
	rep, err := lint.Run(loader, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "cindlint:", err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "cindlint:", err)
			return 2
		}
	} else {
		for _, d := range rep.Diagnostics {
			fmt.Fprintln(stdout, d)
		}
		for _, ig := range rep.BareIgnores {
			fmt.Fprintf(stdout, "%s:%d: lint:ignore without a reason: every suppression must say why (lint:ignore <analyzer> <reason>)\n",
				ig.Path, ig.Line)
		}
		fmt.Fprintf(stdout, "cindlint: %d packages, %d diagnostics, %d bare ignores, %d active ignores\n",
			rep.Packages, len(rep.Diagnostics), len(rep.BareIgnores), len(rep.ActiveIgnores))
	}
	if !rep.Clean() {
		return 1
	}
	return 0
}
