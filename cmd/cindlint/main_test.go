package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cind/internal/lint"
)

// The fake module under internal/lint/testdata/mod doubles as CLI
// fixture: loaded here through the real module's loader, its packages
// still compile, so they give cindlint deterministic dirty and clean
// inputs without touching real engine code.
const (
	cleanPkg = "./internal/lint/testdata/mod/clean"
	dirtyPkg = "./internal/lint/testdata/mod/emit"
	barePkg  = "./internal/lint/testdata/mod/internal/stream"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestCleanPackageExitsZero(t *testing.T) {
	code, out, _ := runCLI(t, cleanPkg)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if !strings.Contains(out, "1 packages, 0 diagnostics, 0 bare ignores, 0 active ignores") {
		t.Errorf("summary line missing or wrong:\n%s", out)
	}
}

func TestDiagnosticsExitOne(t *testing.T) {
	code, out, _ := runCLI(t, dirtyPkg)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "maporder") {
		t.Errorf("diagnostic line missing:\n%s", out)
	}
	if !strings.Contains(out, "3 active ignores") {
		t.Errorf("active-ignore count missing from summary:\n%s", out)
	}
}

// A reason-less directive is a failure on its own, even when the
// analyzer it would silence never runs on the package.
func TestBareIgnoreExitsOneWithoutDiagnostics(t *testing.T) {
	code, out, _ := runCLI(t, "-only", "nowalltime", barePkg)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(out, "lint:ignore without a reason") {
		t.Errorf("bare-ignore error line missing:\n%s", out)
	}
	if !strings.Contains(out, "0 diagnostics, 1 bare ignores") {
		t.Errorf("summary line missing or wrong:\n%s", out)
	}
}

// TestJSONShape pins the -json output contract: it must round-trip
// through lint.Report and keep the four committed key names.
func TestJSONShape(t *testing.T) {
	code, out, _ := runCLI(t, "-json", dirtyPkg)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; output:\n%s", code, out)
	}
	var rep lint.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("output is not a lint.Report: %v\n%s", err, out)
	}
	if rep.Packages != 1 || len(rep.Diagnostics) != 1 || len(rep.ActiveIgnores) != 3 {
		t.Errorf("report = %+v, want 1 package, 1 diagnostic, 3 active ignores", rep)
	}
	d := rep.Diagnostics[0]
	if d.Analyzer != "maporder" || d.Line == 0 || d.Col == 0 || d.Path == "" || d.Message == "" {
		t.Errorf("diagnostic fields incomplete: %+v", d)
	}
	var keys map[string]json.RawMessage
	if err := json.Unmarshal([]byte(out), &keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"packages", "diagnostics", "bare_ignores", "active_ignores"} {
		if _, ok := keys[k]; !ok {
			t.Errorf("JSON output missing key %q", k)
		}
	}
}

func TestOnlyFilter(t *testing.T) {
	// nowalltime is scoped to real engine dirs, so it has nothing to
	// say about the fixture package — and the maporder finding there
	// must not leak through the filter.
	code, out, _ := runCLI(t, "-only", "nowalltime", dirtyPkg)
	if code != 0 {
		t.Fatalf("exit = %d, want 0; output:\n%s", code, out)
	}
	if _, _, stderr := runCLI(t, "-only", "nosuch", dirtyPkg); stderr == "" {
		t.Error("unknown analyzer produced no stderr")
	}
	if code, _, _ := runCLI(t, "-only", "nosuch", dirtyPkg); code != 2 {
		t.Errorf("unknown analyzer exit = %d, want 2", code)
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	code, _, stderr := runCLI(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if stderr == "" {
		t.Error("bad flag produced no usage output")
	}
}
