// Command cindserve serves constraint checking over HTTP: named datasets
// (a database instance + a constraint set + a lazily-built cind.Checker)
// with CSV upload, NDJSON violation streaming, incremental delta batches
// and constraint-driven repair — the serving layer for the paper's goal of
// applying CFD/CIND detection to live data pipelines.
//
// Usage:
//
//	cindserve -addr 127.0.0.1:8080
//	cindserve -constraints bank.cind -load interest=interest.csv -dataset bank
//	cindserve -data /var/lib/cindserve -fsync always
//
// The optional -constraints/-load flags preload one dataset before serving
// (the same effect as PUT /datasets/{name}/constraints and PUT
// /datasets/{name}?relation=...). -addr with port 0 picks a free port; the
// bound address is printed as
//
//	cindserve: listening on http://127.0.0.1:PORT
//
// Durability: -data DIR makes datasets survive restarts. Each dataset gets
// a directory under DIR holding its constraint spec, periodic CSV
// snapshots and a CRC-framed write-ahead log of applied delta batches; on
// boot the newest snapshot is loaded and the WAL tail replayed through the
// same Checker.Apply path live requests use, so the recovered violation
// report is identical to a never-crashed process's. A torn WAL tail from a
// crash mid-append is detected by its CRC frame and truncated, never
// replayed. -fsync picks the sync policy: "always" (default — an
// acknowledged batch is a durable batch), "off" (leave flushing to the OS)
// or an interval like "100ms" (coalesce fsyncs, bounding loss to the
// window). Without -data the server is purely in-memory, as before.
//
// Endpoints (see internal/server):
//
//	PUT  /datasets/{name}/constraints    upload the constraint spec (?parallel=N)
//	PUT  /datasets/{name}?relation=R     upload CSV rows into relation R
//	GET  /datasets/{name}/violations     stream violations (?limit=N; 0 = all)
//	POST /datasets/{name}/deltas         apply a delta batch, returns the diff
//	POST /datasets/{name}/repair         compute a repair change log
//	POST /datasets/{name}/implication    decide Σ ⊨ ψ for each cind clause in the
//	                                     body: verdict + proof or counterexample
//	GET  /datasets/{name}/consistency    combined Checking (Fig 9): verdict +
//	                                     witness (?k=, ?seed=, ?method=chase|sat)
//	POST /datasets/{name}/minimize       drop implied constraints: minimized spec
//	                                     text + one certificate per drop
//	GET  /healthz, /metrics, /debug/vars health and expvar metrics
//
// The violations stream's encoding is negotiated by the Accept header
// (internal/stream): NDJSON by default — one violation object per line,
// ending with a {"done":true,"count":N} trailer line — application/json
// for a single batched document, or application/x-cind-frames for
// CRC-framed binary batches, the fastest transfer (cindviolate -from
// consumes it and re-emits NDJSON). Every encoding ends with an explicit
// trailer or error record, so clients can tell a complete stream from a
// cut connection. /metrics carries per-endpoint latency histograms
// (log2-bucketed, with p50/p99/max/mean summaries) under latency_us.
//
// The reasoning endpoints run with the request context: a disconnected
// client cancels the implication case-split fan-out, the chase and the SAT
// decision loop cooperatively, and a cancelled computation answers 503.
//
// An interrupt (Ctrl-C) or SIGTERM shuts down gracefully: in-flight
// violation streams are drained (each ends with a final {"error": ...}
// line), the listener closes, and in durable mode the WAL is flushed and
// closed. Exit status 0 on a clean shutdown.
//
// -backend driver:dsn runs every dataset's detection through a
// database/sql backend instead of the in-memory engine: relations are
// mirrored into per-dataset SQL databases and the paper's detection
// queries run there ("-backend mem:" uses the embedded zero-dependency
// engine; any linked driver works). Violation streams and ?limit= are
// identical to the in-memory engine's, violation for violation.
// -backend is exclusive with -route.
//
// Router mode: -route shard1,shard2,... serves the same HTTP API over a
// fleet of shard cindserves instead of a local checker (internal/shard).
// Datasets are hash-partitioned across the shards with CIND right-hand
// sides replicated, violation streams are scattered to every shard as
// binary frames and k-way merged back into the exact single-node order,
// and reasoning calls proxy to a consistent-hash home shard. Repair
// answers 501 in router mode. Shards started for a router should pass
// -shard N (their index in the -route list), which namespaces -data so
// two shards never share a WAL directory:
//
//	cindserve -addr :8081 -shard 0 -data /var/lib/cind
//	cindserve -addr :8082 -shard 1 -data /var/lib/cind
//	cindserve -addr :8080 -route 127.0.0.1:8081,127.0.0.1:8082
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	cind "cind"

	"cind/internal/server"
	"cind/internal/shard"
	"cind/internal/wal"
)

type loadFlags []string

func (d *loadFlags) String() string { return strings.Join(*d, ",") }
func (d *loadFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
	constraints := flag.String("constraints", "", "constraint file (.cind format) to preload")
	name := flag.String("dataset", "default", "dataset name for preloaded -constraints/-load")
	parallel := flag.Int("parallel", 0, "detection worker goroutines for the preloaded dataset (0 = GOMAXPROCS)")
	dataDir := flag.String("data", "", "data directory for durable datasets (WAL + snapshots); empty = in-memory")
	fsync := flag.String("fsync", "always", `WAL sync policy: "always", "off", or a flush interval like "100ms"`)
	backend := flag.String("backend", "", "run detection through SQL: driver:dsn, e.g. mem: (requires a linked driver)")
	route := flag.String("route", "", "comma-separated shard URLs: serve as a scatter-gather router instead of a local checker")
	shardIdx := flag.Int("shard", -1, "this node's index in its router's -route list; namespaces -data per shard")
	var load loadFlags
	flag.Var(&load, "load", "relation=file.csv to preload (repeatable; header row required)")
	flag.Parse()

	if *route != "" {
		if *constraints != "" || len(load) > 0 || *dataDir != "" || *shardIdx >= 0 || *backend != "" {
			fmt.Fprintln(os.Stderr, "cindserve: -route is exclusive with -constraints/-load/-data/-shard/-backend")
			os.Exit(2)
		}
		runRouter(*addr, *route)
		return
	}
	if *shardIdx >= 0 && *dataDir != "" {
		*dataDir = shard.DataDir(*dataDir, *shardIdx)
	}

	policy, err := wal.ParsePolicy(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindserve:", err)
		os.Exit(2)
	}
	srv, err := server.NewWithOptions(server.Options{DataDir: *dataDir, Fsync: policy, Backend: *backend})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindserve:", err)
		os.Exit(2)
	}
	if *dataDir != "" {
		fmt.Printf("cindserve: durable datasets under %s (fsync=%s)\n", *dataDir, *fsync)
	}
	if *backend != "" {
		fmt.Printf("cindserve: detection through SQL backend %s\n", *backend)
	}
	if len(load) > 0 && *constraints == "" {
		fmt.Fprintln(os.Stderr, "cindserve: -load requires -constraints")
		os.Exit(2)
	}
	if *constraints != "" {
		src, err := os.ReadFile(*constraints)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cindserve:", err)
			os.Exit(2)
		}
		set, err := cind.ParseConstraints(string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, "cindserve:", err)
			os.Exit(2)
		}
		if err := srv.CreateDataset(*name, set, *parallel); err != nil {
			fmt.Fprintln(os.Stderr, "cindserve:", err)
			os.Exit(2)
		}
		for _, d := range load {
			rel, file, ok := strings.Cut(d, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "cindserve: bad -load %q (want relation=file.csv)\n", d)
				os.Exit(2)
			}
			fh, err := os.Open(file)
			if err != nil {
				fmt.Fprintln(os.Stderr, "cindserve:", err)
				os.Exit(2)
			}
			err = srv.LoadCSV(*name, rel, fh)
			fh.Close()
			if err != nil {
				fmt.Fprintln(os.Stderr, "cindserve:", err)
				os.Exit(2)
			}
		}
		fmt.Printf("cindserve: preloaded dataset %q from %s\n", *name, *constraints)
	}

	expvar.Publish("cindserve", srv.Vars())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindserve:", err)
		os.Exit(2)
	}
	fmt.Printf("cindserve: listening on http://%s\n", ln.Addr())

	// NewHTTPServer wires BaseContext (Drain cancels in-flight streams) and
	// the slow-client header/idle timeouts.
	hs := server.NewHTTPServer(srv)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Println("cindserve: shutting down, draining streams")
		srv.Drain()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- hs.Shutdown(sctx)
	}()

	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cindserve:", err)
		os.Exit(1)
	}
	if err := <-shutdownErr; err != nil {
		fmt.Fprintln(os.Stderr, "cindserve: shutdown:", err)
		os.Exit(1)
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "cindserve: close wal:", err)
		os.Exit(1)
	}
	fmt.Println("cindserve: shut down cleanly")
}

// runRouter serves router mode: the same HTTP surface, scatter-gathered
// over the given shard fleet. It never returns.
func runRouter(addr, route string) {
	var shards []string
	for _, s := range strings.Split(route, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shards = append(shards, s)
		}
	}
	rt, err := server.NewRouter(server.RouterOptions{Shards: shards})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindserve:", err)
		os.Exit(2)
	}
	expvar.Publish("cindserve", rt.Vars())

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindserve:", err)
		os.Exit(2)
	}
	fmt.Printf("cindserve: routing %d shards (%s)\n", len(rt.Shards()), strings.Join(rt.Shards(), ", "))
	fmt.Printf("cindserve: listening on http://%s\n", ln.Addr())

	hs := server.NewRouterHTTPServer(rt)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		fmt.Println("cindserve: shutting down, draining streams")
		rt.Drain()
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- hs.Shutdown(sctx)
	}()
	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "cindserve:", err)
		os.Exit(1)
	}
	if err := <-shutdownErr; err != nil {
		fmt.Fprintln(os.Stderr, "cindserve: shutdown:", err)
		os.Exit(1)
	}
	fmt.Println("cindserve: shut down cleanly")
	os.Exit(0)
}
