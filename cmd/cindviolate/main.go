// Command cindviolate detects CFD and CIND violations in CSV data — the
// data-cleaning workflow of Examples 1.2 and 2.2 of the paper, where the
// dirty interest rate 10.5% is caught by ψ6 and ϕ3.
//
// Usage:
//
//	cindviolate -constraints bank.cind -data interest=interest.csv -data saving=saving.csv
//	cindviolate -constraints bank.cind -sql            # emit detection SQL instead
//
// Each -data flag loads one CSV file (with header) into the named relation.
// Exit status 0 means clean, 1 means violations were found, 2 means error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cind/internal/instance"
	"cind/internal/parser"
	"cind/internal/sqlgen"
	"cind/internal/violation"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }
func (d *dataFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	constraints := flag.String("constraints", "", "constraint file (.cind format)")
	emitSQL := flag.Bool("sql", false, "print violation-detection SQL and exit")
	var data dataFlags
	flag.Var(&data, "data", "relation=file.csv (repeatable; header row required)")
	flag.Parse()

	if *constraints == "" {
		fmt.Fprintln(os.Stderr, "cindviolate: -constraints is required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*constraints)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}
	spec, err := parser.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}

	if *emitSQL {
		for _, c := range spec.CFDs {
			fmt.Printf("-- %s\n", c)
			for _, q := range sqlgen.ForCFD(c) {
				if q.Single != "" {
					fmt.Println(q.Single + ";")
				}
				fmt.Println(q.Pair + ";")
			}
		}
		for _, c := range spec.CINDs {
			fmt.Printf("-- %s\n", c)
			for _, q := range sqlgen.ForCIND(c) {
				fmt.Println(q + ";")
			}
		}
		return
	}

	db := instance.NewDatabase(spec.Schema)
	for _, d := range data {
		rel, file, ok := strings.Cut(d, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "cindviolate: bad -data %q (want relation=file.csv)\n", d)
			os.Exit(2)
		}
		fh, err := os.Open(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cindviolate:", err)
			os.Exit(2)
		}
		err = violation.LoadCSV(db, rel, fh, true)
		fh.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cindviolate:", err)
			os.Exit(2)
		}
		fmt.Printf("loaded %s: %d tuples\n", rel, db.Instance(rel).Len())
	}

	rep := violation.Detect(db, spec.CFDs, spec.CINDs)
	fmt.Println(rep)
	if !rep.Clean() {
		os.Exit(1)
	}
}
