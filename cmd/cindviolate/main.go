// Command cindviolate detects CFD and CIND violations in CSV data — the
// data-cleaning workflow of Examples 1.2 and 2.2 of the paper, where the
// dirty interest rate 10.5% is caught by ψ6 and ϕ3.
//
// Usage:
//
//	cindviolate -constraints bank.cind -data interest=interest.csv -data saving=saving.csv
//	cindviolate -constraints bank.cind -data ... -limit 100   # first 100 violations only
//	cindviolate -constraints bank.cind -data ... -stream deltas.log  # incremental mode
//	cindviolate -constraints bank.cind -sql            # emit detection SQL instead
//	cindviolate -constraints bank.cind -data ... -backend mem:  # detect via SQL
//	cindviolate -from http://host/datasets/bank/violations -encoding binary
//
// Each -data flag loads one CSV file (with header) into the named relation.
// Detection runs through a cind.Checker over the parsed constraint set;
// -limit caps the number of reported violations (dirty data can otherwise
// produce a quadratic number of violating pairs) and -parallel bounds the
// worker pool. An interrupt (Ctrl-C) cancels the run cooperatively through
// the checker's context: the worker pool stops mid-enumeration instead of
// materialising the rest of the report.
//
// -stream switches to incremental detection: after loading the -data files
// and reporting the initial state, the file's deltas are applied through
// the checker's resident incremental session, and every delta that changes
// the violation report prints the added (+) and removed (-) violations.
// The delta log is CSV, one delta per line:
//
//	+,relation,v1,v2,...   insert the tuple
//	-,relation,v1,v2,...   delete the tuple
//
// Blank lines and lines starting with # are skipped. Values are in schema
// column order and must belong to the attribute domains, exactly like
// -data loading; -limit caps the violations printed for a dirty final
// state. "-stream -" reads the log from stdin, which makes the command a
// long-lived violation monitor for a write stream.
//
// -backend runs batch detection through a database/sql backend instead of
// the in-memory engine: the loaded relations are mirrored into the named
// database ("driver:dsn"; the embedded "mem" driver is always linked, so
// "-backend mem:" needs nothing external) and the paper's detection queries
// run server-side. The report is identical to the in-memory engine's,
// violation for violation, so -limit and the exit codes behave the same.
// -backend does not combine with -stream or -sql.
//
// -from fetches a violation stream from a running cindserve instead of
// detecting locally: the URL is a violations endpoint, -encoding picks the
// transfer encoding requested via Accept (ndjson, json, or binary — the
// length-prefixed frame format), and the output is always NDJSON — one
// violation object per line plus the {"done":true,"count":N} trailer —
// regardless of what went over the wire. That makes the command a
// binary-to-NDJSON converter for shell pipelines: the output of
// "-from URL -encoding binary" is byte-identical to curling the same URL
// with the default Accept. -limit stops after N violations (the trailer is
// then omitted, since the stream was cut deliberately); a stream that ends
// without its trailer, or with the server's error record, exits 2.
//
// Exit status 0 means clean (in -stream mode: the final state is clean),
// 1 means violations were found, 2 means error (including cancellation).
package main

import (
	"bufio"
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"

	cind "cind"

	"cind/internal/sqlgen"
	streampkg "cind/internal/stream"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }
func (d *dataFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	constraints := flag.String("constraints", "", "constraint file (.cind format)")
	emitSQL := flag.Bool("sql", false, "print violation-detection SQL and exit")
	limit := flag.Int("limit", 0, "report at most this many violations (0 = all)")
	parallel := flag.Int("parallel", 0, "detection worker goroutines (0 = GOMAXPROCS)")
	stream := flag.String("stream", "", "delta log to apply incrementally (- for stdin)")
	backend := flag.String("backend", "", "detect through SQL: driver:dsn, e.g. mem: or sqlite:PATH (requires a linked driver)")
	from := flag.String("from", "", "fetch violations from a cindserve URL instead of detecting locally")
	encoding := flag.String("encoding", "ndjson", "transfer encoding to request with -from: ndjson, json or binary")
	var data dataFlags
	flag.Var(&data, "data", "relation=file.csv (repeatable; header row required)")
	flag.Parse()

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt)
	defer cancel()

	if *from != "" {
		if *constraints != "" || len(data) > 0 || *stream != "" || *emitSQL || *backend != "" {
			fmt.Fprintln(os.Stderr, "cindviolate: -from does not combine with -constraints, -data, -stream, -sql or -backend")
			os.Exit(2)
		}
		runFetch(ctx, *from, *encoding, *limit)
		return
	}
	if *backend != "" && (*stream != "" || *emitSQL) {
		fmt.Fprintln(os.Stderr, "cindviolate: -backend does not combine with -stream or -sql")
		os.Exit(2)
	}

	if *constraints == "" {
		fmt.Fprintln(os.Stderr, "cindviolate: -constraints is required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*constraints)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}
	set, err := cind.ParseConstraints(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}

	if *emitSQL {
		for _, c := range set.CFDs() {
			fmt.Printf("-- %s\n", c)
			for _, q := range sqlgen.ForCFD(c) {
				// Exactly one of QC/QV is emitted per normal-form row.
				if q.Single != "" {
					fmt.Println(q.Single + ";")
				}
				if q.Pair != "" {
					fmt.Println(q.Pair + ";")
				}
			}
		}
		for _, c := range set.CINDs() {
			fmt.Printf("-- %s\n", c)
			for _, q := range sqlgen.ForCIND(c) {
				fmt.Println(q + ";")
			}
		}
		return
	}

	db := cind.NewDatabase(set.Schema())
	for _, d := range data {
		rel, file, ok := strings.Cut(d, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "cindviolate: bad -data %q (want relation=file.csv)\n", d)
			os.Exit(2)
		}
		fh, err := os.Open(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cindviolate:", err)
			os.Exit(2)
		}
		err = cind.LoadCSV(db, rel, fh, true)
		fh.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cindviolate:", err)
			os.Exit(2)
		}
		fmt.Printf("loaded %s: %d tuples\n", rel, db.Instance(rel).Len())
	}

	if *stream != "" {
		if *parallel != 0 {
			fmt.Fprintln(os.Stderr, "cindviolate: -parallel has no effect with -stream (the session is single-writer)")
		}
		runStream(ctx, db, set, *stream, *limit)
		return
	}

	// Detect one violation beyond the cap so the truncation notice only
	// fires when something was actually cut off.
	engLimit := *limit
	if engLimit > 0 {
		engLimit++
	}
	opts := []cind.CheckerOption{cind.WithLimit(engLimit), cind.WithParallelism(*parallel)}
	if *backend != "" {
		sqlDB, err := cind.OpenSQLBackend(*backend)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cindviolate:", err)
			os.Exit(2)
		}
		defer sqlDB.Close()
		opts = append(opts, cind.WithSQLBackend(sqlDB))
	}
	chk, err := cind.NewChecker(db, set, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}
	rep, err := chk.Detect(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate: detection cancelled:", err)
		os.Exit(2)
	}
	// The engine was capped at limit+1, so truncation drops exactly the
	// one surplus violation and proves more exist.
	truncated := *limit > 0 && rep.Total() > *limit
	if truncated {
		rep = rep.Truncate(*limit)
	}
	fmt.Println(rep)
	if truncated {
		fmt.Printf("(stopped at -limit %d; more violations exist)\n", *limit)
	}
	if !rep.Clean() {
		os.Exit(1)
	}
}

// runFetch streams violations from a cindserve endpoint, re-emitting them
// as NDJSON lines whatever the transfer encoding was. The decoder's
// terminal result maps onto the exit codes: a clean trailer-terminated
// stream exits 0 (clean) or 1 (violations), while truncation, a
// server-side error record, or corruption exits 2 — a pipeline can trust
// that exit 0/1 means every violation the server found was delivered.
func runFetch(ctx context.Context, url, encName string, limit int) {
	enc, err := streampkg.ParseEncoding(encName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}
	req.Header.Set("Accept", enc.ContentType())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<10))
		fmt.Fprintf(os.Stderr, "cindviolate: %s: %s: %s\n", url, resp.Status, strings.TrimSpace(string(body)))
		os.Exit(2)
	}

	out := bufio.NewWriterSize(os.Stdout, 64<<10)
	jenc := json.NewEncoder(out)
	dec := streampkg.NewDecoder(resp.Body, enc)
	n, cut := 0, false
	for {
		if limit > 0 && n >= limit {
			cut = true
			break
		}
		v, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			out.Flush()
			fmt.Fprintln(os.Stderr, "cindviolate:", err)
			os.Exit(2)
		}
		if err := jenc.Encode(v); err != nil {
			fmt.Fprintln(os.Stderr, "cindviolate:", err)
			os.Exit(2)
		}
		n++
	}
	if !cut {
		// Re-emit the trailer so the output is itself a complete NDJSON
		// stream; after a -limit cut there is none to stand behind.
		fmt.Fprintf(out, "{\"done\":true,\"count\":%d}\n", dec.Count())
	}
	if err := out.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}
	if n > 0 {
		os.Exit(1)
	}
}

// runStream applies a delta log through the checker's incremental session,
// printing every report change as it happens and a final summary. limit
// caps the violations printed for a dirty final state, like -limit does
// for batch detection (the incremental upkeep itself is unaffected).
func runStream(ctx context.Context, db *cind.Database, set *cind.ConstraintSet, path string, limit int) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		fh, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cindviolate:", err)
			os.Exit(2)
		}
		defer fh.Close()
		r = fh
	}

	chk, err := cind.NewChecker(db, set)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}
	// An empty Apply builds the resident incremental session eagerly, so
	// the initial report, every per-delta diff and the final report all
	// come from the one set of maintained indexes — no separate batch
	// detection pass.
	if _, err := chk.Apply(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}
	initial, err := chk.Detect(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate: detection cancelled:", err)
		os.Exit(2)
	}
	fmt.Printf("initial state: %s\n", summarize(initial))

	applied, lineNo := 0, 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, err := parseDelta(set, line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cindviolate: %s:%d: %v\n", path, lineNo, err)
			os.Exit(2)
		}
		diff, err := chk.Apply(ctx, d)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cindviolate: %s:%d: %v\n", path, lineNo, err)
			os.Exit(2)
		}
		applied++
		if diff.Empty() {
			continue
		}
		fmt.Printf("%s  (%s)\n", d, diff)
		for _, v := range diff.Added.CFD {
			fmt.Printf("  + [cfd]  %s\n", v)
		}
		for _, v := range diff.Added.CIND {
			fmt.Printf("  + [cind] %s\n", v)
		}
		for _, v := range diff.Removed.CFD {
			fmt.Printf("  - [cfd]  %s\n", v)
		}
		for _, v := range diff.Removed.CIND {
			fmt.Printf("  - [cind] %s\n", v)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}
	rep, err := chk.Detect(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate: detection cancelled:", err)
		os.Exit(2)
	}
	fmt.Printf("after %d delta(s): %s\n", applied, summarize(rep))
	if !rep.Clean() {
		truncated := false
		if limit > 0 && rep.Total() > limit {
			rep, truncated = rep.Truncate(limit), true
		}
		fmt.Println(rep)
		if truncated {
			fmt.Printf("(stopped at -limit %d; more violations exist)\n", limit)
		}
		os.Exit(1)
	}
}

func summarize(rep *cind.Report) string {
	if rep.Clean() {
		return "clean"
	}
	return fmt.Sprintf("%d violation(s) (%d cfd, %d cind)", rep.Total(), len(rep.CFD), len(rep.CIND))
}

// parseDelta parses one delta-log line: "+,rel,v1,..." or "-,rel,v1,...".
// Values are validated against the attribute domains, exactly like the
// -data CSV loading path (unknown relations and arity mismatches are left
// to Checker.Apply, which reports them with the same line context).
func parseDelta(set *cind.ConstraintSet, line string) (cind.Delta, error) {
	rec, err := csv.NewReader(strings.NewReader(line)).Read()
	if err != nil {
		return cind.Delta{}, err
	}
	if len(rec) < 2 {
		return cind.Delta{}, fmt.Errorf("delta needs op and relation, got %q", line)
	}
	vals := rec[2:]
	if rel, ok := set.Schema().Relation(rec[1]); ok && len(vals) == rel.Arity() {
		for i, a := range rel.Attrs() {
			if !a.Dom.Contains(vals[i]) {
				return cind.Delta{}, fmt.Errorf("value %q outside dom(%s)", vals[i], a.Name)
			}
		}
	}
	t := cind.Consts(vals...)
	switch rec[0] {
	case "+":
		return cind.InsertDelta(rec[1], t), nil
	case "-":
		return cind.DeleteDelta(rec[1], t), nil
	default:
		return cind.Delta{}, fmt.Errorf("bad delta op %q (want + or -)", rec[0])
	}
}
