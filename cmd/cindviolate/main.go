// Command cindviolate detects CFD and CIND violations in CSV data — the
// data-cleaning workflow of Examples 1.2 and 2.2 of the paper, where the
// dirty interest rate 10.5% is caught by ψ6 and ϕ3.
//
// Usage:
//
//	cindviolate -constraints bank.cind -data interest=interest.csv -data saving=saving.csv
//	cindviolate -constraints bank.cind -data ... -limit 100   # first 100 violations only
//	cindviolate -constraints bank.cind -data ... -stream deltas.log  # incremental mode
//	cindviolate -constraints bank.cind -sql            # emit detection SQL instead
//
// Each -data flag loads one CSV file (with header) into the named relation.
// Detection runs through the batched engine of internal/detect; -limit caps
// the number of reported violations (dirty data can otherwise produce a
// quadratic number of violating pairs) and -parallel bounds the worker
// pool.
//
// -stream switches to incremental detection: after loading the -data files
// and reporting the initial state, the file's deltas are applied through a
// resident detect.Session, and every delta that changes the violation
// report prints the added (+) and removed (-) violations. The delta log is
// CSV, one delta per line:
//
//	+,relation,v1,v2,...   insert the tuple
//	-,relation,v1,v2,...   delete the tuple
//
// Blank lines and lines starting with # are skipped. Values are in schema
// column order and must belong to the attribute domains, exactly like
// -data loading; -limit caps the violations printed for a dirty final
// state. "-stream -" reads the log from stdin, which makes the command a
// long-lived violation monitor for a write stream.
//
// Exit status 0 means clean (in -stream mode: the final state is clean),
// 1 means violations were found, 2 means error.
package main

import (
	"bufio"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cind/internal/detect"
	"cind/internal/instance"
	"cind/internal/parser"
	"cind/internal/sqlgen"
	"cind/internal/violation"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }
func (d *dataFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	constraints := flag.String("constraints", "", "constraint file (.cind format)")
	emitSQL := flag.Bool("sql", false, "print violation-detection SQL and exit")
	limit := flag.Int("limit", 0, "report at most this many violations (0 = all)")
	parallel := flag.Int("parallel", 0, "detection worker goroutines (0 = GOMAXPROCS)")
	stream := flag.String("stream", "", "delta log to apply incrementally (- for stdin)")
	var data dataFlags
	flag.Var(&data, "data", "relation=file.csv (repeatable; header row required)")
	flag.Parse()

	if *constraints == "" {
		fmt.Fprintln(os.Stderr, "cindviolate: -constraints is required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*constraints)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}
	spec, err := parser.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}

	if *emitSQL {
		for _, c := range spec.CFDs {
			fmt.Printf("-- %s\n", c)
			for _, q := range sqlgen.ForCFD(c) {
				if q.Single != "" {
					fmt.Println(q.Single + ";")
				}
				fmt.Println(q.Pair + ";")
			}
		}
		for _, c := range spec.CINDs {
			fmt.Printf("-- %s\n", c)
			for _, q := range sqlgen.ForCIND(c) {
				fmt.Println(q + ";")
			}
		}
		return
	}

	db := instance.NewDatabase(spec.Schema)
	for _, d := range data {
		rel, file, ok := strings.Cut(d, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "cindviolate: bad -data %q (want relation=file.csv)\n", d)
			os.Exit(2)
		}
		fh, err := os.Open(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cindviolate:", err)
			os.Exit(2)
		}
		err = violation.LoadCSV(db, rel, fh, true)
		fh.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cindviolate:", err)
			os.Exit(2)
		}
		fmt.Printf("loaded %s: %d tuples\n", rel, db.Instance(rel).Len())
	}

	if *stream != "" {
		if *parallel != 0 {
			fmt.Fprintln(os.Stderr, "cindviolate: -parallel has no effect with -stream (the session is single-writer)")
		}
		runStream(db, spec, *stream, *limit)
		return
	}

	// Detect one violation beyond the cap so the truncation notice only
	// fires when something was actually cut off.
	engLimit := *limit
	if engLimit > 0 {
		engLimit++
	}
	rep := violation.DetectWith(db, spec.CFDs, spec.CINDs,
		detect.Options{Limit: engLimit, Parallel: *parallel})
	truncated := *limit > 0 && rep.Total() > *limit
	if truncated {
		// Exactly one surplus violation (the engine was capped at
		// limit+1), and it is the last in report order.
		if len(rep.CIND) > 0 {
			rep.CIND = rep.CIND[:len(rep.CIND)-1]
		} else {
			rep.CFD = rep.CFD[:*limit]
		}
	}
	fmt.Println(rep)
	if truncated {
		fmt.Printf("(stopped at -limit %d; more violations exist)\n", *limit)
	}
	if !rep.Clean() {
		os.Exit(1)
	}
}

// runStream applies a delta log through an incremental detect.Session,
// printing every report change as it happens and a final summary. limit
// caps the violations printed for a dirty final state, like -limit does
// for batch detection (the incremental upkeep itself is unaffected).
func runStream(db *instance.Database, spec *parser.Spec, path string, limit int) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		fh, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cindviolate:", err)
			os.Exit(2)
		}
		defer fh.Close()
		r = fh
	}

	sess := violation.NewSession(db, spec.CFDs, spec.CINDs)
	fmt.Printf("initial state: %s\n", summarize(sess.Report()))

	applied, lineNo := 0, 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, err := parseDelta(spec, line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cindviolate: %s:%d: %v\n", path, lineNo, err)
			os.Exit(2)
		}
		diff, err := sess.Apply(d)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cindviolate: %s:%d: %v\n", path, lineNo, err)
			os.Exit(2)
		}
		applied++
		if diff.Empty() {
			continue
		}
		fmt.Printf("%s  (%s)\n", d, diff)
		for _, v := range diff.Added.CFD {
			fmt.Printf("  + [cfd]  %s\n", v)
		}
		for _, v := range diff.Added.CIND {
			fmt.Printf("  + [cind] %s\n", v)
		}
		for _, v := range diff.Removed.CFD {
			fmt.Printf("  - [cfd]  %s\n", v)
		}
		for _, v := range diff.Removed.CIND {
			fmt.Printf("  - [cind] %s\n", v)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}
	rep := sess.Report()
	fmt.Printf("after %d delta(s): %s\n", applied, summarize(rep))
	if !rep.Clean() {
		truncated := false
		if limit > 0 && rep.Total() > limit {
			capped := &violation.Report{CFD: rep.CFD, CIND: rep.CIND}
			if len(capped.CFD) > limit {
				capped.CFD = capped.CFD[:limit]
			}
			if rest := limit - len(capped.CFD); len(capped.CIND) > rest {
				capped.CIND = capped.CIND[:rest]
			}
			rep, truncated = capped, true
		}
		fmt.Println(rep)
		if truncated {
			fmt.Printf("(stopped at -limit %d; more violations exist)\n", limit)
		}
		os.Exit(1)
	}
}

func summarize(rep *violation.Report) string {
	if rep.Clean() {
		return "clean"
	}
	return fmt.Sprintf("%d violation(s) (%d cfd, %d cind)", rep.Total(), len(rep.CFD), len(rep.CIND))
}

// parseDelta parses one delta-log line: "+,rel,v1,..." or "-,rel,v1,...".
// Values are validated against the attribute domains, exactly like the
// -data CSV loading path (unknown relations and arity mismatches are left
// to Session.Apply, which reports them with the same line context).
func parseDelta(spec *parser.Spec, line string) (detect.Delta, error) {
	rec, err := csv.NewReader(strings.NewReader(line)).Read()
	if err != nil {
		return detect.Delta{}, err
	}
	if len(rec) < 2 {
		return detect.Delta{}, fmt.Errorf("delta needs op and relation, got %q", line)
	}
	vals := rec[2:]
	if rel, ok := spec.Schema.Relation(rec[1]); ok && len(vals) == rel.Arity() {
		for i, a := range rel.Attrs() {
			if !a.Dom.Contains(vals[i]) {
				return detect.Delta{}, fmt.Errorf("value %q outside dom(%s)", vals[i], a.Name)
			}
		}
	}
	t := instance.Consts(vals...)
	switch rec[0] {
	case "+":
		return detect.Ins(rec[1], t), nil
	case "-":
		return detect.Del(rec[1], t), nil
	default:
		return detect.Delta{}, fmt.Errorf("bad delta op %q (want + or -)", rec[0])
	}
}
