// Command cindviolate detects CFD and CIND violations in CSV data — the
// data-cleaning workflow of Examples 1.2 and 2.2 of the paper, where the
// dirty interest rate 10.5% is caught by ψ6 and ϕ3.
//
// Usage:
//
//	cindviolate -constraints bank.cind -data interest=interest.csv -data saving=saving.csv
//	cindviolate -constraints bank.cind -data ... -limit 100   # first 100 violations only
//	cindviolate -constraints bank.cind -sql            # emit detection SQL instead
//
// Each -data flag loads one CSV file (with header) into the named relation.
// Detection runs through the batched engine of internal/detect; -limit caps
// the number of reported violations (dirty data can otherwise produce a
// quadratic number of violating pairs) and -parallel bounds the worker
// pool. Exit status 0 means clean, 1 means violations were found, 2 means
// error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"cind/internal/detect"
	"cind/internal/instance"
	"cind/internal/parser"
	"cind/internal/sqlgen"
	"cind/internal/violation"
)

type dataFlags []string

func (d *dataFlags) String() string { return strings.Join(*d, ",") }
func (d *dataFlags) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	constraints := flag.String("constraints", "", "constraint file (.cind format)")
	emitSQL := flag.Bool("sql", false, "print violation-detection SQL and exit")
	limit := flag.Int("limit", 0, "report at most this many violations (0 = all)")
	parallel := flag.Int("parallel", 0, "detection worker goroutines (0 = GOMAXPROCS)")
	var data dataFlags
	flag.Var(&data, "data", "relation=file.csv (repeatable; header row required)")
	flag.Parse()

	if *constraints == "" {
		fmt.Fprintln(os.Stderr, "cindviolate: -constraints is required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*constraints)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}
	spec, err := parser.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindviolate:", err)
		os.Exit(2)
	}

	if *emitSQL {
		for _, c := range spec.CFDs {
			fmt.Printf("-- %s\n", c)
			for _, q := range sqlgen.ForCFD(c) {
				if q.Single != "" {
					fmt.Println(q.Single + ";")
				}
				fmt.Println(q.Pair + ";")
			}
		}
		for _, c := range spec.CINDs {
			fmt.Printf("-- %s\n", c)
			for _, q := range sqlgen.ForCIND(c) {
				fmt.Println(q + ";")
			}
		}
		return
	}

	db := instance.NewDatabase(spec.Schema)
	for _, d := range data {
		rel, file, ok := strings.Cut(d, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "cindviolate: bad -data %q (want relation=file.csv)\n", d)
			os.Exit(2)
		}
		fh, err := os.Open(file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cindviolate:", err)
			os.Exit(2)
		}
		err = violation.LoadCSV(db, rel, fh, true)
		fh.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cindviolate:", err)
			os.Exit(2)
		}
		fmt.Printf("loaded %s: %d tuples\n", rel, db.Instance(rel).Len())
	}

	// Detect one violation beyond the cap so the truncation notice only
	// fires when something was actually cut off.
	engLimit := *limit
	if engLimit > 0 {
		engLimit++
	}
	rep := violation.DetectWith(db, spec.CFDs, spec.CINDs,
		detect.Options{Limit: engLimit, Parallel: *parallel})
	truncated := *limit > 0 && rep.Total() > *limit
	if truncated {
		// Exactly one surplus violation (the engine was capped at
		// limit+1), and it is the last in report order.
		if len(rep.CIND) > 0 {
			rep.CIND = rep.CIND[:len(rep.CIND)-1]
		} else {
			rep.CFD = rep.CFD[:*limit]
		}
	}
	fmt.Println(rep)
	if truncated {
		fmt.Printf("(stopped at -limit %d; more violations exist)\n", *limit)
	}
	if !rep.Clean() {
		os.Exit(1)
	}
}
