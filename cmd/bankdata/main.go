// Command bankdata regenerates the checked-in testdata/bank fixtures from
// the canonical in-code fixtures of internal/bank: the constraint file
// bank.cind (the schema of Example 1.1 plus the CINDs of Figure 2 and CFDs
// of Figure 4) and one CSV per Figure 1 instance — including the dirty
// 10.5% interest rate in t12 that the integration tests expect detection to
// catch.
//
// Usage:
//
//	go run ./cmd/bankdata [-dir testdata/bank]
//
// TestTestdataMatchesBankPackage guards the generated files against drift
// from internal/bank; rerun this command after changing the bank package.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cind/internal/bank"
	"cind/internal/parser"
	"cind/internal/violation"
)

func main() {
	dir := flag.String("dir", filepath.Join("testdata", "bank"), "output directory")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	sch := bank.Schema()
	spec := parser.BankSpec(sch, bank.CFDs(sch), bank.CINDs(sch))
	if _, err := parser.Parse(spec); err != nil {
		fatal(fmt.Errorf("generated spec does not reparse: %v", err))
	}
	if err := os.WriteFile(filepath.Join(*dir, "bank.cind"), []byte(spec), 0o644); err != nil {
		fatal(err)
	}
	fmt.Println("wrote", filepath.Join(*dir, "bank.cind"))

	db := bank.Data(sch)
	for _, rel := range sch.Relations() {
		name := rel.Name() + ".csv"
		f, err := os.Create(filepath.Join(*dir, name))
		if err != nil {
			fatal(err)
		}
		if err := violation.MarshalCSV(db.Instance(rel.Name()), f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", filepath.Join(*dir, name))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bankdata:", err)
	os.Exit(2)
}
