// Command cindgen generates random constraint workloads following the
// experimental setup of Section 6 of the paper: random schemas (up to 100
// relations, ≤15 attributes, a configurable ratio F of finite-domain
// attributes) and random sets of CFDs and CINDs (75%/25% by default),
// either consistent by construction or unconstrained.
//
// The workload is written in the cindcheck text format to stdout, so the
// two tools compose:
//
//	cindgen -card 500 -consistent | tee w.cind && cindcheck w.cind
package main

import (
	"flag"
	"fmt"
	"os"

	"cind/internal/gen"
	"cind/internal/parser"
)

func main() {
	relations := flag.Int("relations", 20, "number of relations")
	maxAttrs := flag.Int("maxattrs", 15, "maximum attributes per relation")
	f := flag.Float64("f", 0.25, "ratio of finite-domain attributes")
	card := flag.Int("card", 100, "card(Σ): number of constraints")
	ratio := flag.Float64("cfdratio", 0.75, "CFD share of Σ")
	consistent := flag.Bool("consistent", false, "generate a consistent set (witness-guided)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	w := gen.New(gen.Config{
		Relations:  *relations,
		MaxAttrs:   *maxAttrs,
		F:          *f,
		Card:       *card,
		CFDRatio:   *ratio,
		Consistent: *consistent,
		Seed:       *seed,
	})
	fmt.Printf("# generated workload: %d CFDs, %d CINDs over %d relations (seed %d, consistent=%v)\n",
		len(w.CFDs), len(w.CINDs), w.Schema.Len(), *seed, *consistent)
	out := parser.Marshal(&parser.Spec{Schema: w.Schema, CFDs: w.CFDs, CINDs: w.CINDs})
	if _, err := os.Stdout.WriteString(out); err != nil {
		fmt.Fprintln(os.Stderr, "cindgen:", err)
		os.Exit(1)
	}
}
