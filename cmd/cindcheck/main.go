// Command cindcheck decides consistency of a constraint file: it parses a
// schema plus CFDs and CINDs in the text format of internal/parser and runs
// the heuristic algorithms of Section 5 of "Extending Dependencies with
// Conditions" (VLDB 2007).
//
// Usage:
//
//	cindcheck [-algo checking|random] [-method chase|sat] [-k N] [-t N] [-seed N] file.cind
//
// Exit status 0 means a witness was found (Σ is consistent, definitively);
// 1 means no witness was found within the budgets (Σ may be inconsistent);
// 2 means a usage or parse error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	cind "cind"

	"cind/internal/consistency"
)

func main() {
	algo := flag.String("algo", "checking", "algorithm: checking (Fig 9) or random (Fig 5)")
	method := flag.String("method", "chase", "CFD_Checking method: chase or sat")
	k := flag.Int("k", 20, "K: RandomChecking attempts / valuations")
	tcap := flag.Int("t", 2000, "T: table cap of the instantiated chase")
	kcfd := flag.Int("kcfd", 100000, "K_CFD: valuation budget of chase CFD_Checking")
	seed := flag.Int64("seed", 1, "random seed")
	verbose := flag.Bool("v", false, "print the witness template on success")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cindcheck [flags] file.cind")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindcheck:", err)
		os.Exit(2)
	}
	set, err := cind.ParseConstraints(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "cindcheck:", err)
		os.Exit(2)
	}
	opts := consistency.Options{K: *k, T: *tcap, KCFD: *kcfd, Seed: *seed}
	if *method == "sat" {
		opts.Method = consistency.SAT
	}
	var ans consistency.Answer
	switch *algo {
	case "checking":
		ans = set.CheckConsistency(opts)
	case "random":
		ans = set.RandomCheckConsistency(opts)
	default:
		fmt.Fprintf(os.Stderr, "cindcheck: unknown algorithm %q\n", *algo)
		os.Exit(2)
	}
	fmt.Printf("constraints: %d CFDs, %d CINDs over %d relations\n",
		len(set.CFDs()), len(set.CINDs()), set.Schema().Len())
	if ans.Consistent {
		// Cross-check ground witnesses with the detection engine BEFORE
		// printing the verdict: a witness claiming to satisfy Σ must
		// produce zero violations, and a scripted caller must never see a
		// CONSISTENT verdict that verification then contradicts.
		// (Templates with chase variables stand for fresh distinct
		// constants and are not directly checkable.)
		verified := ans.Witness != nil && ans.Witness.IsGround()
		if verified {
			chk, err := cind.NewChecker(ans.Witness, set, cind.WithLimit(1))
			if err != nil {
				fmt.Fprintln(os.Stderr, "cindcheck:", err)
				os.Exit(2)
			}
			rep, err := chk.Detect(context.Background())
			if err != nil || !rep.Clean() {
				// The checker and the detection engine disagree — an
				// internal bug, not a property of Σ.
				fmt.Fprintln(os.Stderr, "cindcheck: internal error: witness fails verification by the detection engine")
				os.Exit(2)
			}
		}
		fmt.Println("verdict: CONSISTENT (witness found)")
		if verified {
			fmt.Println("witness verified: no violations")
		}
		if *verbose && ans.Witness != nil {
			fmt.Println(ans.Witness)
		}
		return
	}
	fmt.Println("verdict: NO WITNESS FOUND (possibly inconsistent; the problem is undecidable)")
	os.Exit(1)
}
