// Command cindexp regenerates the experimental study of Section 6 of the
// paper: every figure (10a, 10b, 11a–11d) and the executable verification
// of Tables 1 and 2. By default it runs a quick sweep that preserves the
// paper's shapes; -paper restores the full parameter ranges (slow).
//
// Usage:
//
//	cindexp -fig 10a            # one figure
//	cindexp -table 1            # table verification rows
//	cindexp -all                # everything
//	cindexp -all -paper -runs 6 # full paper scale
package main

import (
	"flag"
	"fmt"
	"os"

	"cind/internal/exp"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate: 10a, 10b, 11a, 11b, 11c, 11d")
	table := flag.String("table", "", "table to verify: 1, 2 (both run the same rows)")
	all := flag.Bool("all", false, "run every figure and table")
	paper := flag.Bool("paper", false, "full paper-scale parameter sweeps (slow)")
	runs := flag.Int("runs", 0, "repetitions per point (default 3; paper used 6)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	p := exp.Defaults()
	p.Seed = *seed
	if *runs > 0 {
		p.Runs = *runs
	}

	sweeps := quickSweeps()
	if *paper {
		sweeps = paperSweeps()
		p.KCFD = 2000000 // the paper fixes K_CFD = 2000K after Fig 10(b)
	}

	ran := false
	run := func(name string) {
		ran = true
		switch name {
		case "10a":
			exp.Fig10aSeries(exp.Fig10a(p, sweeps.fig10a)).Print(os.Stdout)
		case "10b":
			exp.Fig10bSeries(exp.Fig10b(p, sweeps.fig10b)).Print(os.Stdout)
		case "11a":
			exp.Fig11aSeries(exp.Fig11Consistent(p, sweeps.fig11)).Print(os.Stdout)
		case "11b":
			exp.Fig11bSeries(exp.Fig11Consistent(p, sweeps.fig11)).Print(os.Stdout)
		case "11c":
			exp.Fig11cSeries(exp.Fig11Random(p, sweeps.fig11)).Print(os.Stdout)
		case "11d":
			exp.Fig11dSeries(exp.Fig11d(p, sweeps.fig11dRels, sweeps.fig11dRatio)).Print(os.Stdout)
		case "tables":
			exp.TableSeries(exp.RunTables(p)).Print(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "cindexp: unknown figure %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	switch {
	case *all:
		for _, name := range []string{"10a", "10b", "11a", "11b", "11c", "11d", "tables"} {
			run(name)
		}
	case *fig != "":
		run(*fig)
	case *table != "":
		run("tables")
	}
	if !ran {
		fmt.Fprintln(os.Stderr, "usage: cindexp -fig 10a|10b|11a|11b|11c|11d | -table 1|2 | -all [-paper] [-runs N]")
		os.Exit(2)
	}
}

type sweepSet struct {
	fig10a      []int
	fig10b      []int
	fig11       []int
	fig11dRels  []int
	fig11dRatio int
}

// quickSweeps preserve the paper's shapes at laptop-friendly sizes.
func quickSweeps() sweepSet {
	return sweepSet{
		fig10a:      []int{25, 50, 100, 200, 400},
		fig10b:      []int{1, 4, 16, 64, 256, 2048},
		fig11:       []int{250, 500, 1000, 2000, 4000},
		fig11dRels:  []int{5, 10, 20, 40},
		fig11dRatio: 100,
	}
}

// paperSweeps are the ranges of Section 6.
func paperSweeps() sweepSet {
	return sweepSet{
		fig10a:      []int{100, 200, 400, 600, 800, 1000, 1200},
		fig10b:      []int{100, 200, 400, 800, 1600, 3200, 6400, 16000},
		fig11:       []int{2500, 5000, 10000, 15000, 20000},
		fig11dRels:  []int{10, 20, 40, 60, 80, 100},
		fig11dRatio: 1000,
	}
}
