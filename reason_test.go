// Tests for the reasoning half of the public API: ConstraintSet.Implies /
// ImplyAll / Minimize / CheckConsistencyContext, certificate soundness of
// minimization, and detection parity between a set and its minimized form.
package cind_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	cindapi "cind"

	"cind/internal/bank"
	"cind/internal/implication"
)

// dupCIND rebuilds a CIND under a fresh ID — the way tests plant exact
// redundancy.
func dupCIND(t testing.TB, sch *cindapi.Schema, id string, c *cindapi.CIND) *cindapi.CIND {
	t.Helper()
	out, err := cindapi.NewCIND(sch, id, c.LHSRel, c.X, c.Xp, c.RHSRel, c.Y, c.Yp, c.Rows)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// redundantBankSet builds the bank set extended with provably redundant
// CINDs: an exact duplicate of ψ3 under a fresh ID, and the Example 3.3
// goal (account_B[at] ⊆ interest[at]), which Σ derives in the inference
// system. Minimize must drop redundancy while preserving order.
func redundantBankSet(t testing.TB) (*cindapi.Schema, *cindapi.ConstraintSet) {
	t.Helper()
	sch, set := bankSet(t)
	dup := dupCIND(t, sch, "dup_psi3", bank.Psi3(sch))
	ex33, err := cindapi.NewCIND(sch, "ex33", "account_EDI", []string{"at"}, nil,
		"interest", []string{"at"}, nil,
		[]cindapi.CINDRow{{LHS: []cindapi.Symbol{cindapi.Wild}, RHS: []cindapi.Symbol{cindapi.Wild}}})
	if err != nil {
		t.Fatal(err)
	}
	bigger, err := set.Append(dup, ex33)
	if err != nil {
		t.Fatal(err)
	}
	return sch, bigger
}

// violationKeys flattens a report for differential comparison: kind,
// constraint ID and witness tuples, in report order.
func violationKeys(rep *cindapi.Report) []string {
	var out []string
	for _, v := range rep.Violations() {
		parts := []string{v.Kind().String(), v.ConstraintID(), v.Relation()}
		for _, tu := range v.Witness() {
			parts = append(parts, tu.String())
		}
		out = append(out, strings.Join(parts, " "))
	}
	return out
}

// TestMinimizeDropsRedundantWithCertificates: Minimize removes the planted
// redundancy, every drop carries an Implied certificate, the surviving set
// preserves order, and the minimized set remains equivalent to the
// original (each dropped member is still implied by the survivors).
func TestMinimizeDropsRedundantWithCertificates(t *testing.T) {
	sch, set := redundantBankSet(t)
	res, err := set.Minimize(context.Background(), cindapi.ImplicationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) == 0 {
		t.Fatal("the planted duplicate and the derivable ex33 must be dropped")
	}
	droppedIDs := map[string]bool{}
	for _, d := range res.Dropped {
		if d.CIND == nil {
			t.Fatal("drop record without the constraint")
		}
		droppedIDs[d.CIND.ID] = true
		if d.Outcome.Verdict != cindapi.Implied {
			t.Fatalf("dropped %s without an Implied verdict (%v)", d.CIND.ID, d.Outcome.Verdict)
		}
		if d.Outcome.Proof == nil && d.Outcome.Reason == "" {
			t.Fatalf("dropped %s carries neither proof nor chase reason", d.CIND.ID)
		}
		if set.Constraints()[d.Index].(*cindapi.CIND) != d.CIND {
			t.Fatalf("drop index %d does not point at %s in the original set", d.Index, d.CIND.ID)
		}
	}
	if !droppedIDs["ex33"] && !droppedIDs["dup_psi3"] && !droppedIDs["psi3"] {
		t.Fatalf("no planted redundancy dropped; dropped = %v", droppedIDs)
	}
	// Order preservation: the survivors appear in original relative order.
	want := []string{}
	for _, c := range set.Constraints() {
		id := constraintID(c)
		if !droppedIDs[id] {
			want = append(want, id)
		}
	}
	got := []string{}
	for _, c := range res.Set.Constraints() {
		got = append(got, constraintID(c))
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("minimized order %v, want %v", got, want)
	}
	// CFDs are never dropped.
	if len(res.Set.CFDs()) != len(set.CFDs()) {
		t.Fatal("Minimize must not drop CFDs")
	}
	// Certificate soundness, re-checked: the surviving CINDs still imply
	// every dropped member (the bank redundancy is inference-derivable, so
	// the conservative Equivalent check must succeed).
	for _, d := range res.Dropped {
		out := implication.Decide(sch, res.Set.CINDs(), d.CIND, implication.Options{})
		if out.Verdict != cindapi.Implied {
			t.Fatalf("survivors no longer imply dropped %s: %v (%s)", d.CIND.ID, out.Verdict, out.Reason)
		}
	}
}

// TestMinimizeDetectionParity: on the bank data and on generated dirty
// workloads, the minimized set's report equals the full set's report
// restricted to surviving constraints — violation for violation, in order —
// and the clean/dirty verdict of any database is preserved.
func TestMinimizeDetectionParity(t *testing.T) {
	ctx := context.Background()
	check := func(name string, db *cindapi.Database, set *cindapi.ConstraintSet) {
		t.Run(name, func(t *testing.T) {
			res, err := set.Minimize(ctx, cindapi.ImplicationOptions{})
			if err != nil {
				t.Fatal(err)
			}
			surviving := map[string]bool{}
			for _, c := range res.Set.Constraints() {
				surviving[constraintID(c)] = true
			}
			full := detectAll(t, db, set)
			min := detectAll(t, db, res.Set)

			var fullKept []string
			for _, k := range violationKeys(full) {
				if surviving[strings.Fields(k)[1]] {
					fullKept = append(fullKept, k)
				}
			}
			minKeys := violationKeys(min)
			if strings.Join(fullKept, "\n") != strings.Join(minKeys, "\n") {
				t.Fatalf("minimized report diverges from the full report's surviving slice:\nfull(kept):\n%s\nminimized:\n%s",
					strings.Join(fullKept, "\n"), strings.Join(minKeys, "\n"))
			}
			// Verdict preservation: dropped constraints are implied by the
			// survivors, so a database clean under the minimized set is
			// clean under the original.
			if min.Clean() != full.Clean() {
				t.Fatalf("clean verdict diverged: full=%v minimized=%v", full.Clean(), min.Clean())
			}
		})
	}

	sch, set := redundantBankSet(t)
	check("bank", bank.Data(sch), set)

	for seed := int64(1); seed <= 4; seed++ {
		set, db := genWorkloadSet(t, seed)
		// Plant redundancy: duplicate every CIND under a fresh ID.
		var dups []cindapi.Constraint
		for _, c := range set.CINDs() {
			dups = append(dups, dupCIND(t, set.Schema(), "dup_"+c.ID, c))
		}
		bigger, err := set.Append(dups...)
		if err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("gen-%d", seed), db, bigger)
	}
}

// detectAll runs batch detection for a set over a database.
func detectAll(t *testing.T, db *cindapi.Database, set *cindapi.ConstraintSet) *cindapi.Report {
	t.Helper()
	chk, err := cindapi.NewChecker(db, set)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := chk.Detect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func constraintID(c cindapi.Constraint) string {
	switch c := c.(type) {
	case *cindapi.CFD:
		return c.ID
	case *cindapi.CIND:
		return c.ID
	}
	return ""
}

// TestImpliesMatchesFacade: the set-level Implies agrees with the facade
// DecideImplication, and ImplyAll returns per-goal outcomes in goal order.
func TestImpliesMatchesFacade(t *testing.T) {
	sch, set := bankSet(t)
	goals := append([]*cindapi.CIND{}, set.CINDs()...)
	conv, err := cindapi.NewCIND(sch, "conv", "interest", []string{"ab"}, nil,
		"saving", []string{"ab"}, nil,
		[]cindapi.CINDRow{{LHS: []cindapi.Symbol{cindapi.Wild}, RHS: []cindapi.Symbol{cindapi.Wild}}})
	if err != nil {
		t.Fatal(err)
	}
	goals = append(goals, conv)

	batch, err := set.ImplyAll(context.Background(), goals, cindapi.ImplicationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, psi := range goals {
		single := set.Implies(psi, cindapi.ImplicationOptions{})
		facade := cindapi.DecideImplication(sch, set.CINDs(), psi, cindapi.ImplicationOptions{})
		if single.Verdict != facade.Verdict || batch[i].Verdict != facade.Verdict {
			t.Fatalf("goal %s: set=%v batch=%v facade=%v",
				psi.ID, single.Verdict, batch[i].Verdict, facade.Verdict)
		}
	}
	// An invalid goal is rejected up front, not at detection depth.
	d := cindapi.InfiniteDomain("d")
	xrel, err := cindapi.NewRelation("X",
		cindapi.Attribute{Name: "A", Dom: d}, cindapi.Attribute{Name: "B", Dom: d})
	if err != nil {
		t.Fatal(err)
	}
	other, err := cindapi.NewSchema(xrel)
	if err != nil {
		t.Fatal(err)
	}
	alien, err := cindapi.NewCIND(other, "alien", "X", []string{"A"}, nil,
		"X", []string{"B"}, nil,
		[]cindapi.CINDRow{{LHS: []cindapi.Symbol{cindapi.Wild}, RHS: []cindapi.Symbol{cindapi.Wild}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.ImpliesContext(context.Background(), alien, cindapi.ImplicationOptions{}); err == nil {
		t.Fatal("a goal over a foreign schema must be rejected")
	}
	if _, err := set.ImplyAll(context.Background(), []*cindapi.CIND{alien}, cindapi.ImplicationOptions{}); err == nil {
		t.Fatal("ImplyAll must reject a foreign goal")
	}
}

// TestCheckConsistencyContextOnSet: the context variant agrees with the
// plain call on the bank constraints, and honors cancellation.
func TestCheckConsistencyContextOnSet(t *testing.T) {
	_, set := bankSet(t)
	opts := cindapi.CheckOptions{K: 40, Seed: 5}
	plain := set.CheckConsistency(opts)
	viaCtx, err := set.CheckConsistencyContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Consistent != viaCtx.Consistent {
		t.Fatalf("context variant diverged: %v vs %v", viaCtx.Consistent, plain.Consistent)
	}
	if !viaCtx.Consistent {
		t.Fatal("the bank constraints are consistent")
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := set.CheckConsistencyContext(cancelled, opts); err != context.Canceled {
		t.Fatalf("cancelled CheckConsistencyContext err = %v", err)
	}
	if _, err := set.RandomCheckConsistencyContext(cancelled, opts); err != context.Canceled {
		t.Fatalf("cancelled RandomCheckConsistencyContext err = %v", err)
	}
	if _, err := set.Minimize(cancelled, cindapi.ImplicationOptions{}); err != context.Canceled {
		t.Fatalf("cancelled Minimize err = %v", err)
	}
}

// TestMinimizeDuplicatePointerOccurrence: a set listing the SAME *CIND
// pointer twice is redundancy like any other — exactly one occurrence is
// dropped (tracked by position, not pointer identity), and the minimized
// set still contains the constraint.
func TestMinimizeDuplicatePointerOccurrence(t *testing.T) {
	sch := bank.Schema()
	psi3 := bank.Psi3(sch)
	psi4 := bank.Psi4(sch)
	set, err := cindapi.NewConstraintSet(sch, psi3, psi4, psi3) // same pointer twice
	if err != nil {
		t.Fatal(err)
	}
	res, err := set.Minimize(context.Background(), cindapi.ImplicationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dropped) != 1 || res.Dropped[0].CIND != psi3 {
		t.Fatalf("want exactly one ψ3 occurrence dropped, got %d drops", len(res.Dropped))
	}
	if res.Set.Len() != 2 {
		t.Fatalf("minimized set has %d members, want 2 (ψ3 kept once)", res.Set.Len())
	}
	found := 0
	for _, c := range res.Set.CINDs() {
		if c == psi3 {
			found++
		}
	}
	if found != 1 {
		t.Fatalf("ψ3 appears %d times in the minimized set, want exactly 1", found)
	}
}
