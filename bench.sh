#!/bin/sh
# bench.sh — record the violation-detection benchmarks for trajectory
# tracking. Emits BENCH_detect.json (bulk detection), BENCH_incr.json
# (incremental session vs per-delta re-detection), BENCH_stream.json
# (time-to-first-violation via Checker.Violations vs full Detect on the
# dirty 10k-tuple workload), BENCH_serve.json (cindserve's violation
# streaming throughput per negotiated encoding — ndjson/json/binary, each
# as the thin-client serving rate and the _decoded end-to-end rate — vs
# the direct in-process iterator),
# BENCH_reason.json (minimize-then-detect: detection under a redundant
# constraint set vs its minimized equivalent), BENCH_wal.json (the delta
# path with WAL durability at each fsync policy vs in-memory) and
# BENCH_shard.json (scatter-gather detection at 1/2/4 shards on the
# 100k-tuple generated workload, reporting the simulated-cluster critical
# path as tuples/s) and BENCH_sql.json (detection through the
# database/sql backend vs the in-memory engine at 10k/100k tuples), all
# go test -json event streams whose "output" lines carry the ns/op, B/op
# and allocs/op figures.
# Usage: ./bench.sh [extra go test args, e.g. -benchtime=10x]
set -eu

go test -bench=ViolationDetection -benchmem -run '^$' -json "$@" . > BENCH_detect.json

# The incremental benchmarks run a fixed delta count: the workload database
# grows under the write mix, so a time-based -benchtime would let large
# iteration counts drift the instance far past the stated 10k tuples.
go test -bench=Incremental -benchmem -run '^$' -benchtime=500x -json . > BENCH_incr.json

go test -bench=StreamFirstViolation -benchmem -run '^$' -json "$@" . > BENCH_stream.json

# Served vs direct streamed-violations throughput: the violations endpoint
# in every negotiated encoding (serving rate + _decoded end-to-end rate)
# against the in-process Checker.Violations baseline.
go test -bench=ViolationsThroughput -benchmem -run '^$' -json "$@" ./internal/server > BENCH_serve.json

# Reasoning: minimize-then-detect (detection under a redundant constraint
# set vs the ConstraintSet.Minimize'd set, plus the one-off minimize cost
# and the implication micro-benchmarks).
go test -bench=Reason -benchmem -run '^$' -json "$@" . > BENCH_reason.json

# Durability: the delta path through the handler with the WAL at each sync
# policy vs the in-memory baseline (what "acknowledged means durable"
# costs per batch).
go test -bench=WALDeltaApply -benchmem -run '^$' -json "$@" ./internal/server > BENCH_wal.json

# Sharding: per-shard detection plus k-way merge at 1/2/4 shards; the
# tuples/s metric is the critical path (slowest simulated node + merge),
# the figure a real fleet is bounded by.
go test -bench=ShardedDetect -benchmem -run '^$' -benchtime=3x -json ./internal/shard > BENCH_shard.json

# SQL backend: warm-mirror detection through WithSQLBackend over the
# embedded engine vs the in-memory engine, 10k and 100k checking tuples
# (the PERFORMANCE.md backend comparison). Fixed iterations: the 100k SQL
# run is ~1.3s/op, a time-based -benchtime would stretch the suite.
go test -bench=SQLBackendDetect -benchmem -run '^$' -benchtime=3x -json . > BENCH_sql.json

# Human-readable summary of the recorded metric lines.
for f in BENCH_detect.json BENCH_incr.json BENCH_stream.json BENCH_serve.json BENCH_reason.json BENCH_wal.json BENCH_shard.json BENCH_sql.json; do
	grep -o '"Output":"[^"]*ns/op[^"]*"' "$f" \
		| sed 's/"Output":"//; s/\\t/\t/g; s/\\n"$//' || true
done

echo "wrote BENCH_detect.json BENCH_incr.json BENCH_stream.json BENCH_serve.json BENCH_reason.json BENCH_wal.json BENCH_shard.json BENCH_sql.json"
