#!/bin/sh
# bench.sh — record the violation-detection benchmarks for trajectory
# tracking. Emits BENCH_detect.json (a go test -json event stream whose
# "output" lines carry the ns/op, B/op and allocs/op figures).
# Usage: ./bench.sh [extra go test args, e.g. -benchtime=10x]
set -eu

go test -bench=ViolationDetection -benchmem -run '^$' -json "$@" . > BENCH_detect.json

# Human-readable summary of the recorded metric lines.
grep -o '"Output":"[^"]*ns/op[^"]*"' BENCH_detect.json \
	| sed 's/"Output":"//; s/\\t/\t/g; s/\\n"$//' || true

echo "wrote BENCH_detect.json"
